open Transport

type proc = { sign : Wire.Idl.signature; impl : Wire.Value.t -> Wire.Value.t }

type t = {
  stack : Netstack.stack;
  suite : Component.protocol_suite;
  port : int;
  service_overhead_ms : float;
  prog : int;
  vers : int;
  concurrent : bool;
  procs : (int, proc) Hashtbl.t;
  mutable udp_sock : Udp.socket option;
  mutable listener : Tcp.listener option;
  mutable running : bool;
  mutable served : int;
}

let create stack ~suite ?port ?(service_overhead_ms = 0.0) ?(concurrent = false)
    ~prog ~vers () =
  if suite.Component.control = Component.C_raw then
    invalid_arg "Hrpc.Server.create: raw control is for native message servers";
  let port =
    match port with
    | Some p -> p
    | None -> (
        match suite.Component.transport with
        | Component.T_udp -> Netstack.alloc_udp_port stack
        | Component.T_tcp -> Netstack.alloc_tcp_port stack)
  in
  {
    stack;
    suite;
    port;
    service_overhead_ms;
    prog;
    vers;
    concurrent;
    procs = Hashtbl.create 16;
    udp_sock = None;
    listener = None;
    running = false;
    served = 0;
  }

let register t ~procnum ~sign impl =
  if Hashtbl.mem t.procs procnum then
    invalid_arg (Printf.sprintf "Hrpc.Server.register: duplicate procedure %d" procnum);
  Hashtbl.replace t.procs procnum { sign; impl }

let binding t =
  Binding.make ~suite:t.suite
    ~server:(Address.make (Netstack.ip t.stack) t.port)
    ~prog:t.prog ~vers:t.vers

let calls_served t = t.served

(* Process one control message; [None] means drop silently. *)
let dispatch t payload : string option =
  let rep = t.suite.Component.data_rep in
  let run (proc : proc) procnum body =
    (* The server half of cross-hop propagation: adopt the caller's
       stamped span as a remote parent, so the whole exchange renders
       as one tree even though client and server are different
       simulated processes. *)
    let trace, parent, body = Trace_header.strip body in
    match Wire.Data_rep.of_string rep proc.sign.Wire.Idl.arg body with
    | exception _ -> Error `Garbage
    | arg ->
        t.served <- t.served + 1;
        let span = Obs.Span.open_remote_span ~trace ~parent "hrpc_serve" in
        if span <> 0 then begin
          Obs.Span.add_attr "proc" (string_of_int procnum);
          Obs.Span.add_attr "port" (string_of_int t.port)
        end;
        Fun.protect
          ~finally:(fun () -> Obs.Span.close_span span)
          (fun () ->
            (* A crashing procedure must not take the server process
               (and the whole simulation) down with it. *)
            match proc.impl arg with
            | res -> Ok (Wire.Data_rep.to_string rep proc.sign.Wire.Idl.res res)
            | exception Failure m -> Error (`Crash m)
            | exception Invalid_argument m -> Error (`Crash m))
  in
  match t.suite.Component.control with
  | Component.C_raw -> None
  | Component.C_sunrpc -> (
      match Rpc.Sunrpc_wire.decode payload with
      | exception Rpc.Sunrpc_wire.Bad_message _ -> None
      | Rpc.Sunrpc_wire.Reply _ -> None
      | Rpc.Sunrpc_wire.Call c ->
          let rbody =
            if Int32.to_int c.prog <> t.prog || Int32.to_int c.vers <> t.vers then
              Rpc.Sunrpc_wire.Prog_unavail
            else
              match Hashtbl.find_opt t.procs (Int32.to_int c.procnum) with
              | None ->
                  if c.procnum = 0l then Rpc.Sunrpc_wire.Success ""
                  else Rpc.Sunrpc_wire.Proc_unavail
              | Some proc -> (
                  match run proc (Int32.to_int c.procnum) c.body with
                  | Ok body -> Rpc.Sunrpc_wire.Success body
                  | Error `Garbage -> Rpc.Sunrpc_wire.Garbage_args
                  | Error (`Crash _) -> Rpc.Sunrpc_wire.System_err)
          in
          Some (Rpc.Sunrpc_wire.(encode (Reply { rxid = c.xid; rbody }))))
  | Component.C_courier -> (
      match Rpc.Courier_wire.decode payload with
      | exception Rpc.Courier_wire.Bad_message _ -> None
      | Rpc.Courier_wire.Return _ | Rpc.Courier_wire.Abort _ | Rpc.Courier_wire.Reject _
        ->
          None
      | Rpc.Courier_wire.Call c ->
          let reply =
            if Int32.to_int c.prog <> t.prog then
              Rpc.Courier_wire.Reject
                { transaction = c.transaction; code = Rpc.Courier_wire.No_such_program }
            else if c.vers <> t.vers then
              Rpc.Courier_wire.Reject
                { transaction = c.transaction; code = Rpc.Courier_wire.No_such_version }
            else
              match Hashtbl.find_opt t.procs c.procnum with
              | None ->
                  Rpc.Courier_wire.Reject
                    {
                      transaction = c.transaction;
                      code = Rpc.Courier_wire.No_such_procedure;
                    }
              | Some proc -> (
                  match run proc c.procnum c.body with
                  | Ok body -> Rpc.Courier_wire.Return { transaction = c.transaction; body }
                  | Error `Garbage ->
                      Rpc.Courier_wire.Reject
                        {
                          transaction = c.transaction;
                          code = Rpc.Courier_wire.Invalid_arguments;
                        }
                  | Error (`Crash m) ->
                      Rpc.Courier_wire.Abort
                        {
                          transaction = c.transaction;
                          error = 1;
                          body = Wire.Courier.to_string Wire.Idl.T_string (Wire.Value.Str m);
                        })
          in
          Some (Rpc.Courier_wire.encode reply))

let start t =
  if t.running then invalid_arg "Hrpc.Server.start: already running";
  t.running <- true;
  let name = Printf.sprintf "hrpc-srv:%d/%s" t.port (Component.suite_name t.suite) in
  match t.suite.Component.transport with
  | Component.T_udp ->
      let sock = Udp.bind t.stack ~port:t.port in
      t.udp_sock <- Some sock;
      Sim.Engine.spawn_child ~name (fun () ->
          while t.running do
            let src, payload = Udp.recv sock in
            let serve () =
              if t.service_overhead_ms > 0.0 then
                Sim.Engine.sleep t.service_overhead_ms;
              match dispatch t payload with
              | Some reply -> Udp.sendto sock ~dst:src reply
              | None -> ()
            in
            (* A concurrent server hands each datagram to its own
               fiber so slow procedures (e.g. an agent's upstream
               FindNSM) never serialize unrelated requests — and so
               duplicate in-flight requests can actually meet in the
               procedure's coalescing table. *)
            if t.concurrent then Sim.Engine.spawn_child ~name:(name ^ ":req") serve
            else serve ()
          done)
  | Component.T_tcp ->
      let listener = Tcp.listen t.stack ~port:t.port in
      t.listener <- Some listener;
      Sim.Engine.spawn_child ~name (fun () ->
          while t.running do
            let conn = Tcp.accept listener in
            Sim.Engine.spawn_child ~name:(name ^ ":conn") (fun () ->
                let rec loop () =
                  match Tcp.recv conn with
                  | exception Tcp.Connection_closed -> ()
                  | payload ->
                      (if t.service_overhead_ms > 0.0 then
                         Sim.Engine.sleep t.service_overhead_ms);
                      (match dispatch t payload with
                      | Some reply -> Tcp.send conn reply
                      | None -> ());
                      loop ()
                in
                loop ();
                Tcp.close conn)
          done)

let stop t =
  t.running <- false;
  (match t.udp_sock with Some s -> Udp.close s | None -> ());
  (match t.listener with Some l -> Tcp.close_listener l | None -> ());
  t.udp_sock <- None;
  t.listener <- None
