(** Exporting a service over a chosen protocol suite.

    An HRPC server looks to clients of the emulated system exactly
    like a homogeneous peer: export with {!Component.sunrpc_suite} and
    native Sun RPC clients can call you; export with
    {!Component.courier_suite} and Courier clients can. The NSMs are
    served this way.

    Raw control cannot be exported here — raw servers {e are} the
    native message-passing programs (e.g. the BIND server). *)

type t

(** Raises [Invalid_argument] for a raw-control suite.

    [concurrent] (default false) makes the UDP service loop dispatch
    each request on its own fiber instead of serially, so procedures
    that block on downstream calls don't convoy unrelated requests.
    Keep the default for cost-model servers whose single service
    fiber {e is} the modelled CPU; turn it on for proxies like the
    HNS agent, where concurrent identical requests must be able to
    meet in a coalescing table. (TCP service already runs one fiber
    per connection.) *)
val create :
  Transport.Netstack.stack ->
  suite:Component.protocol_suite ->
  ?port:int ->
  ?service_overhead_ms:float ->
  ?concurrent:bool ->
  prog:int ->
  vers:int ->
  unit ->
  t

val register :
  t ->
  procnum:int ->
  sign:Wire.Idl.signature ->
  (Wire.Value.t -> Wire.Value.t) ->
  unit

val start : t -> unit
val stop : t -> unit

(** The binding clients use to call this server. *)
val binding : t -> Binding.t

val calls_served : t -> int
