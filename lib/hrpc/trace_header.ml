(* Cross-hop trace context rides inside the call body, in front of the
   marshalled arguments: a 4-byte magic plus two fixed-width hex ids.

     "HTC1" <trace_id:%08x> <span_id:%08x> <marshalled args...>

   The header lives *inside* the SunRPC/Courier envelope, so the
   control wire formats are untouched; stripping is magic-gated, so
   unstamped traffic (tracing off, old clients, the TCP conn-cache
   path) decodes exactly as before. Raw-control calls (DNS) never
   carry it. *)

let magic = "HTC1"
let header_len = 20

let stamp ~trace ~span body =
  Printf.sprintf "%s%08x%08x%s" magic (trace land 0xFFFFFFFF)
    (span land 0xFFFFFFFF) body

(* Stamp the calling fiber's current span context, if tracing is on
   and a span is open. *)
let stamp_current body =
  match Obs.Span.context () with
  | None -> body
  | Some (trace, span) -> stamp ~trace ~span body

let hex s = int_of_string ("0x" ^ s)

(* [(trace, span, rest)]; [(0, 0, body)] when no header is present. *)
let strip body =
  if String.length body >= header_len && String.sub body 0 4 = magic then
    match (hex (String.sub body 4 8), hex (String.sub body 12 8)) with
    | trace, span ->
        (trace, span, String.sub body header_len (String.length body - header_len))
    | exception _ -> (0, 0, body)
  else (0, 0, body)
