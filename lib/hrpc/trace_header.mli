(** The cross-hop trace context header.

    A client under an open span prepends ["HTC1" ^ trace ^ span] (two
    fixed-width lowercase-hex ids) to the marshalled call arguments;
    the server strips it and opens its dispatch span as a {e remote}
    child of [span] in trace [trace] ({!Obs.Span.open_remote_span}).
    The header sits inside the control envelope (SunRPC / Courier
    call body), leaving the control wire formats untouched; raw
    control (DNS) never carries it.

    Stripping is magic-gated: bodies without the 20-byte prefix pass
    through untouched, so unstamped traffic from tracing-off clients
    interoperates. *)

val header_len : int

val stamp : trace:int -> span:int -> string -> string

(** Stamp the calling fiber's current span context
    ({!Obs.Span.context}); identity when tracing is off or no span is
    open. *)
val stamp_current : string -> string

(** [strip body] is [(trace, span, rest)], or [(0, 0, body)] when no
    well-formed header is present. *)
val strip : string -> int * int * string
