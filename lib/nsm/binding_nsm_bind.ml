type t = {
  stack : Transport.Netstack.stack;
  resolver : Dns.Resolver.t;
  services : (string, int * int) Hashtbl.t;
  cache_ : Hns.Cache.t;
  cache_ttl_ms : float;
  per_query_ms : float;
  mutable backend : int;
}

let create stack ~bind_server ?(services = []) ?cache ?(cache_ttl_ms = 600_000.0)
    ?(per_query_ms = 0.0) () =
  let cache_ =
    match cache with
    | Some c -> c
    | None -> Hns.Cache.create ~mode:Hns.Cache.Demarshalled ()
  in
  let t =
    {
      stack;
      (* The NSM keeps its own resolver; the HNS-level cache is
         deliberately separate (Table 3.1 distinguishes their hits). *)
      resolver = Dns.Resolver.create stack ~servers:[ bind_server ] ~enable_cache:false ();
      services = Hashtbl.create 8;
      cache_;
      cache_ttl_ms;
      per_query_ms;
      backend = 0;
    }
  in
  List.iter (fun (name, (prog, vers)) -> Hashtbl.replace t.services name (prog, vers)) services;
  t

let add_service t name ~prog ~vers = Hashtbl.replace t.services name (prog, vers)
let cache t = t.cache_
let backend_queries t = t.backend

(* ServiceName -> (prog, vers): directory first, then "prog:vers". *)
let service_numbers t service =
  match Hashtbl.find_opt t.services service with
  | Some pv -> Some pv
  | None -> (
      match String.split_on_char ':' service with
      | [ p; v ] -> (
          match (int_of_string_opt p, int_of_string_opt v) with
          | Some prog, Some vers -> Some (prog, vers)
          | _ -> None)
      | _ -> None)

let lookup t ~service ~(hns_name : Hns.Hns_name.t) =
  let key = Nsm_common.cache_key ~tag:"bind-binding" ~service hns_name in
  match Hns.Cache.find t.cache_ ~key ~ty:Hrpc.Binding.idl_ty with
  | Some v -> Hns.Nsm_intf.found v
  | None -> (
      Nsm_common.charge t.per_query_ms;
      match service_numbers t service with
      | None -> failwith (Printf.sprintf "unknown ServiceName %S" service)
      | Some (prog, vers) -> (
          t.backend <- t.backend + 1;
          (* Step 1: the local name lookup in BIND. *)
          match Dns.Resolver.lookup_a t.resolver (Dns.Name.of_string hns_name.name) with
          | Error Dns.Resolver.Nxdomain | Error Dns.Resolver.No_data ->
              Hns.Nsm_intf.not_found
          | Error e -> (
              (* BIND unreachable: degrade to a stale binding within
                 the cache's staleness budget before giving up. *)
              match Hns.Cache.find_stale t.cache_ ~key ~ty:Hrpc.Binding.idl_ty with
              | Some v -> Hns.Nsm_intf.found v
              | None ->
                  failwith
                    (Format.asprintf "BIND lookup failed: %a" Dns.Resolver.pp_error
                       e))
          | Ok host_ip -> (
              (* Step 2: the Sun binding protocol — ask the host's
                 portmapper for the service's port. *)
              match
                Rpc.Portmap.getport t.stack ~portmapper:host_ip ~prog ~vers ()
              with
              | Error e ->
                  failwith
                    (Format.asprintf "portmapper failed: %a" Rpc.Control.pp_error e)
              | Ok None -> Hns.Nsm_intf.not_found
              | Ok (Some port) ->
                  let binding =
                    Hrpc.Binding.make ~suite:Hrpc.Component.sunrpc_suite
                      ~server:(Transport.Address.make host_ip port)
                      ~prog ~vers
                  in
                  let v = Hrpc.Binding.to_value binding in
                  Hns.Cache.insert t.cache_ ~key ~ty:Hrpc.Binding.idl_ty
                    ~ttl_ms:t.cache_ttl_ms v;
                  Hns.Nsm_intf.found v)))

let preload t ~context ~hosts =
  let warmed = ref 0 in
  Hashtbl.iter
    (fun service _ ->
      List.iter
        (fun host ->
          let hns_name = Hns.Hns_name.make ~context ~name:host in
          match lookup t ~service ~hns_name with
          | Wire.Value.Union (0, _) -> incr warmed
          | _ -> ()
          | exception Failure _ -> ())
        hosts)
    t.services;
  !warmed

let impl t =
  Nsm_common.instrument ~name:"bind.hrpcbinding" (fun arg ->
      let service, hns_name = Hns.Nsm_intf.parse_arg arg in
      lookup t ~service ~hns_name)

let serve t ~prog ?vers ?suite ?port ?service_overhead_ms () =
  Nsm_common.serve t.stack ~impl:(impl t) ~payload_ty:Hns.Nsm_intf.binding_payload_ty
    ~prog ?vers ?suite ?port ?service_overhead_ms ()
