type t = {
  stack : Transport.Netstack.stack;
  ch_server : Transport.Address.t;
  credentials : Clearinghouse.Ch_proto.credentials;
  domain : string;
  org : string;
  cache_ : Hns.Cache.t;
  cache_ttl_ms : float;
  per_query_ms : float;
  mutable backend : int;
}

let create stack ~ch_server ~credentials ~domain ~org ?cache
    ?(cache_ttl_ms = 600_000.0) ?(per_query_ms = 0.0) () =
  let cache_ =
    match cache with
    | Some c -> c
    | None -> Hns.Cache.create ~mode:Hns.Cache.Demarshalled ()
  in
  { stack; ch_server; credentials; domain; org; cache_; cache_ttl_ms; per_query_ms; backend = 0 }

let cache t = t.cache_
let backend_queries t = t.backend

let lookup t ~service ~(hns_name : Hns.Hns_name.t) =
  let key = Nsm_common.cache_key ~tag:"ch-binding" ~service hns_name in
  match Hns.Cache.find t.cache_ ~key ~ty:Hrpc.Binding.idl_ty with
  | Some v -> Hns.Nsm_intf.found v
  | None -> (
      Nsm_common.charge t.per_query_ms;
      t.backend <- t.backend + 1;
      let local = if service = "" then hns_name.name else service in
      let obj = Clearinghouse.Ch_name.make ~local ~domain:t.domain ~org:t.org in
      let client =
        Clearinghouse.Ch_client.connect t.stack ~server:t.ch_server
          ~credentials:t.credentials
      in
      let result =
        Clearinghouse.Ch_client.retrieve_item client obj
          ~prop:Clearinghouse.Property.Id.service_binding
      in
      Clearinghouse.Ch_client.close client;
      match result with
      | Error Clearinghouse.Ch_client.Not_found -> Hns.Nsm_intf.not_found
      | Error (Clearinghouse.Ch_client.Rpc_error e) ->
          failwith
            (Format.asprintf "Clearinghouse lookup failed: %a" Rpc.Control.pp_error e)
      | Ok bytes -> (
          match Hrpc.Binding.of_bytes bytes with
          | exception Invalid_argument m -> failwith m
          | binding ->
              let v = Hrpc.Binding.to_value binding in
              Hns.Cache.insert t.cache_ ~key ~ty:Hrpc.Binding.idl_ty
                ~ttl_ms:t.cache_ttl_ms v;
              Hns.Nsm_intf.found v))

let impl t =
  Nsm_common.instrument ~name:"ch.hrpcbinding" (fun arg ->
      let service, hns_name = Hns.Nsm_intf.parse_arg arg in
      lookup t ~service ~hns_name)

let serve t ~prog ?vers ?suite ?port ?service_overhead_ms () =
  Nsm_common.serve t.stack ~impl:(impl t) ~payload_ty:Hns.Nsm_intf.binding_payload_ty
    ~prog ?vers ?suite ?port ?service_overhead_ms ()
