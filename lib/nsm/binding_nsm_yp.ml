type t = {
  stack : Transport.Netstack.stack;
  client : Yp.Yp_client.t;
  services : (string, int * int) Hashtbl.t;
  cache_ : Hns.Cache.t;
  cache_ttl_ms : float;
  per_query_ms : float;
  mutable backend : int;
}

let create stack ~yp_server ~domain ?(services = []) ?cache
    ?(cache_ttl_ms = 600_000.0) ?(per_query_ms = 0.0) () =
  let cache_ =
    match cache with
    | Some c -> c
    | None -> Hns.Cache.create ~mode:Hns.Cache.Demarshalled ()
  in
  let t =
    {
      stack;
      client = Yp.Yp_client.create stack ~server:yp_server ~domain;
      services = Hashtbl.create 8;
      cache_;
      cache_ttl_ms;
      per_query_ms;
      backend = 0;
    }
  in
  List.iter (fun (name, (prog, vers)) -> Hashtbl.replace t.services name (prog, vers)) services;
  t

let add_service t name ~prog ~vers = Hashtbl.replace t.services name (prog, vers)
let cache t = t.cache_
let backend_queries t = t.backend

let service_numbers t service =
  match Hashtbl.find_opt t.services service with
  | Some pv -> Some pv
  | None -> (
      match String.split_on_char ':' service with
      | [ p; v ] -> (
          match (int_of_string_opt p, int_of_string_opt v) with
          | Some prog, Some vers -> Some (prog, vers)
          | _ -> None)
      | _ -> None)

let lookup t ~service ~(hns_name : Hns.Hns_name.t) =
  let key = Nsm_common.cache_key ~tag:"yp-binding" ~service hns_name in
  match Hns.Cache.find t.cache_ ~key ~ty:Hrpc.Binding.idl_ty with
  | Some v -> Hns.Nsm_intf.found v
  | None -> (
      Nsm_common.charge t.per_query_ms;
      match service_numbers t service with
      | None -> failwith (Printf.sprintf "unknown ServiceName %S" service)
      | Some (prog, vers) -> (
          t.backend <- t.backend + 1;
          match
            Yp.Yp_client.match_ t.client ~map:Yp.Yp_proto.map_hosts_byname
              hns_name.name
          with
          | Error e ->
              failwith (Format.asprintf "YP lookup failed: %a" Rpc.Control.pp_error e)
          | Ok None -> Hns.Nsm_intf.not_found
          | Ok (Some entry) -> (
              let addr_part =
                match String.index_opt entry ' ' with
                | Some i -> String.sub entry 0 i
                | None -> entry
              in
              match Nsm_common.parse_dotted_quad addr_part with
              | None -> failwith (Printf.sprintf "malformed hosts.byname entry %S" entry)
              | Some host_ip -> (
                  match
                    Rpc.Portmap.getport t.stack ~portmapper:host_ip ~prog ~vers ()
                  with
                  | Error e ->
                      failwith
                        (Format.asprintf "portmapper failed: %a" Rpc.Control.pp_error e)
                  | Ok None -> Hns.Nsm_intf.not_found
                  | Ok (Some port) ->
                      let binding =
                        Hrpc.Binding.make ~suite:Hrpc.Component.sunrpc_suite
                          ~server:(Transport.Address.make host_ip port)
                          ~prog ~vers
                      in
                      let v = Hrpc.Binding.to_value binding in
                      Hns.Cache.insert t.cache_ ~key ~ty:Hrpc.Binding.idl_ty
                        ~ttl_ms:t.cache_ttl_ms v;
                      Hns.Nsm_intf.found v))))

let impl t =
  Nsm_common.instrument ~name:"yp.hrpcbinding" (fun arg ->
      let service, hns_name = Hns.Nsm_intf.parse_arg arg in
      lookup t ~service ~hns_name)

let serve t ~prog ?vers ?suite ?port ?service_overhead_ms () =
  Nsm_common.serve t.stack ~impl:(impl t) ~payload_ty:Hns.Nsm_intf.binding_payload_ty
    ~prog ?vers ?suite ?port ?service_overhead_ms ()
