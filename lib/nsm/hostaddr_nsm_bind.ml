type t = {
  stack : Transport.Netstack.stack;
  resolver : Dns.Resolver.t;
  cache_ : Hns.Cache.t;
  cache_ttl_ms : float;
  per_query_ms : float;
  mutable backend : int;
}

let create stack ~bind_server ?cache ?(cache_ttl_ms = 600_000.0) ?(per_query_ms = 0.0)
    () =
  let cache_ =
    match cache with
    | Some c -> c
    | None -> Hns.Cache.create ~mode:Hns.Cache.Demarshalled ()
  in
  {
    stack;
    resolver = Dns.Resolver.create stack ~servers:[ bind_server ] ~enable_cache:false ();
    cache_;
    cache_ttl_ms;
    per_query_ms;
    backend = 0;
  }

let cache t = t.cache_
let backend_queries t = t.backend

let lookup t ~(hns_name : Hns.Hns_name.t) =
  let key = Nsm_common.cache_key ~tag:"bind-hostaddr" ~service:"" hns_name in
  match Hns.Cache.find t.cache_ ~key ~ty:Hns.Nsm_intf.host_address_payload_ty with
  | Some v -> Hns.Nsm_intf.found v
  | None -> (
      Nsm_common.charge t.per_query_ms;
      t.backend <- t.backend + 1;
      match Dns.Resolver.lookup_a t.resolver (Dns.Name.of_string hns_name.name) with
      | Error Dns.Resolver.Nxdomain | Error Dns.Resolver.No_data ->
          Hns.Nsm_intf.not_found
      | Error e -> (
          (* BIND unreachable: degrade to a stale entry within the
             cache's staleness budget before giving up. *)
          match
            Hns.Cache.find_stale t.cache_ ~key
              ~ty:Hns.Nsm_intf.host_address_payload_ty
          with
          | Some v -> Hns.Nsm_intf.found v
          | None ->
              failwith
                (Format.asprintf "BIND lookup failed: %a" Dns.Resolver.pp_error e))
      | Ok ip ->
          let v = Wire.Value.Uint ip in
          Hns.Cache.insert t.cache_ ~key ~ty:Hns.Nsm_intf.host_address_payload_ty
            ~ttl_ms:t.cache_ttl_ms v;
          Hns.Nsm_intf.found v)

let impl t =
  Nsm_common.instrument ~name:"bind.hostaddress" (fun arg ->
      let _service, hns_name = Hns.Nsm_intf.parse_arg arg in
      lookup t ~hns_name)

let serve t ~prog ?vers ?suite ?port ?service_overhead_ms () =
  Nsm_common.serve t.stack ~impl:(impl t)
    ~payload_ty:Hns.Nsm_intf.host_address_payload_ty ~prog ?vers ?suite ?port
    ?service_overhead_ms ()
