type t = {
  stack : Transport.Netstack.stack;
  ch_server : Transport.Address.t;
  credentials : Clearinghouse.Ch_proto.credentials;
  domain : string;
  org : string;
  cache_ : Hns.Cache.t;
  cache_ttl_ms : float;
  per_query_ms : float;
  mutable backend : int;
}

let encode_address ip =
  let wr = Wire.Bytebuf.Wr.create ~initial:4 () in
  Wire.Bytebuf.Wr.u32 wr ip;
  Wire.Bytebuf.Wr.contents wr

let decode_address s =
  if String.length s <> 4 then None
  else Some (Wire.Bytebuf.Rd.u32 (Wire.Bytebuf.Rd.of_string s))

let create stack ~ch_server ~credentials ~domain ~org ?cache
    ?(cache_ttl_ms = 600_000.0) ?(per_query_ms = 0.0) () =
  let cache_ =
    match cache with
    | Some c -> c
    | None -> Hns.Cache.create ~mode:Hns.Cache.Demarshalled ()
  in
  { stack; ch_server; credentials; domain; org; cache_; cache_ttl_ms; per_query_ms; backend = 0 }

let cache t = t.cache_
let backend_queries t = t.backend

let lookup t ~(hns_name : Hns.Hns_name.t) =
  let key = Nsm_common.cache_key ~tag:"ch-hostaddr" ~service:"" hns_name in
  match Hns.Cache.find t.cache_ ~key ~ty:Hns.Nsm_intf.host_address_payload_ty with
  | Some v -> Hns.Nsm_intf.found v
  | None -> (
      Nsm_common.charge t.per_query_ms;
      t.backend <- t.backend + 1;
      let obj =
        Clearinghouse.Ch_name.make ~local:hns_name.name ~domain:t.domain ~org:t.org
      in
      let client =
        Clearinghouse.Ch_client.connect t.stack ~server:t.ch_server
          ~credentials:t.credentials
      in
      let result =
        Clearinghouse.Ch_client.retrieve_item client obj
          ~prop:Clearinghouse.Property.Id.address
      in
      Clearinghouse.Ch_client.close client;
      match result with
      | Error Clearinghouse.Ch_client.Not_found -> Hns.Nsm_intf.not_found
      | Error (Clearinghouse.Ch_client.Rpc_error e) ->
          failwith
            (Format.asprintf "Clearinghouse lookup failed: %a" Rpc.Control.pp_error e)
      | Ok bytes -> (
          match decode_address bytes with
          | None -> failwith "malformed address property"
          | Some ip ->
              let v = Wire.Value.Uint ip in
              Hns.Cache.insert t.cache_ ~key ~ty:Hns.Nsm_intf.host_address_payload_ty
                ~ttl_ms:t.cache_ttl_ms v;
              Hns.Nsm_intf.found v))

let impl t =
  Nsm_common.instrument ~name:"ch.hostaddress" (fun arg ->
      let _service, hns_name = Hns.Nsm_intf.parse_arg arg in
      lookup t ~hns_name)

let serve t ~prog ?vers ?suite ?port ?service_overhead_ms () =
  Nsm_common.serve t.stack ~impl:(impl t)
    ~payload_ty:Hns.Nsm_intf.host_address_payload_ty ~prog ?vers ?suite ?port
    ?service_overhead_ms ()
