type t = {
  stack : Transport.Netstack.stack;
  client : Yp.Yp_client.t;
  cache_ : Hns.Cache.t;
  cache_ttl_ms : float;
  per_query_ms : float;
  mutable backend : int;
}

let create stack ~yp_server ~domain ?cache ?(cache_ttl_ms = 600_000.0)
    ?(per_query_ms = 0.0) () =
  let cache_ =
    match cache with
    | Some c -> c
    | None -> Hns.Cache.create ~mode:Hns.Cache.Demarshalled ()
  in
  {
    stack;
    client = Yp.Yp_client.create stack ~server:yp_server ~domain;
    cache_;
    cache_ttl_ms;
    per_query_ms;
    backend = 0;
  }

let cache t = t.cache_
let backend_queries t = t.backend

let lookup t ~(hns_name : Hns.Hns_name.t) =
  let key = Nsm_common.cache_key ~tag:"yp-hostaddr" ~service:"" hns_name in
  match Hns.Cache.find t.cache_ ~key ~ty:Hns.Nsm_intf.host_address_payload_ty with
  | Some v -> Hns.Nsm_intf.found v
  | None -> (
      Nsm_common.charge t.per_query_ms;
      t.backend <- t.backend + 1;
      match
        Yp.Yp_client.match_ t.client ~map:Yp.Yp_proto.map_hosts_byname hns_name.name
      with
      | Error e -> failwith (Format.asprintf "YP lookup failed: %a" Rpc.Control.pp_error e)
      | Ok None -> Hns.Nsm_intf.not_found
      | Ok (Some entry) -> (
          (* hosts.byname values look like "10.1.0.1 sparcstation1" *)
          let addr_part =
            match String.index_opt entry ' ' with
            | Some i -> String.sub entry 0 i
            | None -> entry
          in
          match Nsm_common.parse_dotted_quad addr_part with
          | None -> failwith (Printf.sprintf "malformed hosts.byname entry %S" entry)
          | Some ip ->
              let v = Wire.Value.Uint ip in
              Hns.Cache.insert t.cache_ ~key ~ty:Hns.Nsm_intf.host_address_payload_ty
                ~ttl_ms:t.cache_ttl_ms v;
              Hns.Nsm_intf.found v))

let impl t =
  Nsm_common.instrument ~name:"yp.hostaddress" (fun arg ->
      let _service, hns_name = Hns.Nsm_intf.parse_arg arg in
      lookup t ~hns_name)

let serve t ~prog ?vers ?suite ?port ?service_overhead_ms () =
  Nsm_common.serve t.stack ~impl:(impl t)
    ~payload_ty:Hns.Nsm_intf.host_address_payload_ty ~prog ?vers ?suite ?port
    ?service_overhead_ms ()
