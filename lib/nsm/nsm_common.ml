(* Per-NSM accounting under nsm.<backend>.<query-class>.*: calls,
   failures, and virtual latency. Applied where each NSM builds its
   [impl], so linked and remote access are counted alike. *)
let instrument ~name (impl : Hns.Nsm_intf.impl) : Hns.Nsm_intf.impl =
  (* Tags are free-form; fold anything outside the registry's naming
     alphabet to '-'. *)
  let name =
    String.map
      (fun c ->
        match Char.lowercase_ascii c with
        | ('a' .. 'z' | '0' .. '9' | '.' | '_' | '-') as l -> l
        | _ -> '-')
      name
  in
  let calls = Obs.Metrics.counter (Printf.sprintf "nsm.%s.calls" name) in
  let errors = Obs.Metrics.counter (Printf.sprintf "nsm.%s.errors" name) in
  let ms = Obs.Metrics.histogram (Printf.sprintf "nsm.%s.ms" name) in
  fun arg ->
    Obs.Metrics.incr calls;
    (* Tag the serving span (the server's hrpc_serve, or the caller's
       own span on the linked path) with which NSM backend answered. *)
    Obs.Span.add_attr "nsm" name;
    Obs.Metrics.time ms (fun () ->
        match impl arg with
        | v -> v
        | exception e ->
            Obs.Metrics.incr errors;
            raise e)

let serve stack ~impl ~payload_ty ~prog ?(vers = 1)
    ?(suite = Hrpc.Component.sunrpc_suite) ?port ?service_overhead_ms () =
  let server =
    Hrpc.Server.create stack ~suite ?port ?service_overhead_ms ~prog ~vers ()
  in
  Hrpc.Server.register server ~procnum:Hns.Nsm_intf.query_procnum
    ~sign:(Hns.Nsm_intf.query_sign ~payload_ty)
    impl;
  server

let cache_key ~tag ~service hns_name =
  Printf.sprintf "nsm:%s:%s!%s" tag service (Hns.Hns_name.to_string hns_name)

let charge ms =
  if ms > 0.0 then
    try Sim.Engine.sleep ms with Effect.Unhandled _ -> ()

let parse_dotted_quad s =
  match String.split_on_char '.' (String.trim s) with
  | [ a; b; c; d ] -> (
      match
        (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c, int_of_string_opt d)
      with
      | Some a, Some b, Some c, Some d
        when a land 0xFF = a && b land 0xFF = b && c land 0xFF = c && d land 0xFF = d ->
          Some (Int32.of_int ((a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d))
      | _ -> None)
  | _ -> None
