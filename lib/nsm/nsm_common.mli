(** Shared plumbing for NSM implementations.

    "The NSMs are neither HNS nor application code per se. Rather,
    they are code managed by the HNS and shared by the applications."
    Every NSM here is written once as an {!Hns.Nsm_intf.impl} and can
    then be linked with any process or exported as a remote HRPC
    service — the colocation freedom of Section 3. *)

(** [serve stack ~impl ~payload_ty ~prog ?vers ?suite ?port
    ?service_overhead_ms ()] exports a linked NSM instance as a remote
    NSM. The returned server is not yet started. *)
val serve :
  Transport.Netstack.stack ->
  impl:Hns.Nsm_intf.impl ->
  payload_ty:Wire.Idl.ty ->
  prog:int ->
  ?vers:int ->
  ?suite:Hrpc.Component.protocol_suite ->
  ?port:int ->
  ?service_overhead_ms:float ->
  unit ->
  Hrpc.Server.t

(** [instrument ~name impl] wraps an NSM implementation with registry
    accounting under [nsm.<name>.calls] / [.errors] / [.ms] (virtual
    milliseconds; errors are backend failures raised as exceptions,
    not NotFound results). *)
val instrument : name:string -> Hns.Nsm_intf.impl -> Hns.Nsm_intf.impl

(** A per-NSM result cache with the standard key layout
    ["nsm:<tag>:<service>!<context>!<name>"]. *)
val cache_key : tag:string -> service:string -> Hns.Hns_name.t -> string

(** Charge virtual CPU if running inside a simulated process. *)
val charge : float -> unit

(** Parse a dotted-quad address ("10.0.0.7"); [None] if malformed. *)
val parse_dotted_quad : string -> Transport.Address.ip option
