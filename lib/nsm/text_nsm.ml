type backend =
  | Bind of { server : Transport.Address.t }
  | Ch of {
      server : Transport.Address.t;
      credentials : Clearinghouse.Ch_proto.credentials;
      domain : string;
      org : string;
      prop : int;
    }

type t = {
  stack : Transport.Netstack.stack;
  backend : backend;
  resolver : Dns.Resolver.t option; (* for the Bind backend *)
  tag : string;
  cache_ : Hns.Cache.t;
  cache_ttl_ms : float;
  per_query_ms : float;
  mutable backend_count : int;
}

let create stack backend ~tag ?cache ?(cache_ttl_ms = 600_000.0) ?(per_query_ms = 0.0)
    () =
  let cache_ =
    match cache with
    | Some c -> c
    | None -> Hns.Cache.create ~mode:Hns.Cache.Demarshalled ()
  in
  let resolver =
    match backend with
    | Bind { server } ->
        Some (Dns.Resolver.create stack ~servers:[ server ] ~enable_cache:false ())
    | Ch _ -> None
  in
  { stack; backend; resolver; tag; cache_; cache_ttl_ms; per_query_ms; backend_count = 0 }

let cache t = t.cache_
let backend_queries t = t.backend_count

let backend_lookup t (hns_name : Hns.Hns_name.t) =
  t.backend_count <- t.backend_count + 1;
  match t.backend with
  | Bind _ -> (
      let resolver = Option.get t.resolver in
      match
        Dns.Resolver.query resolver (Dns.Name.of_string hns_name.name) Dns.Rr.T_txt
      with
      | Error Dns.Resolver.Nxdomain | Error Dns.Resolver.No_data -> None
      | Error e ->
          failwith (Format.asprintf "BIND lookup failed: %a" Dns.Resolver.pp_error e)
      | Ok records ->
          List.find_map
            (fun (rr : Dns.Rr.t) ->
              match rr.rdata with
              | Dns.Rr.Txt (s :: _) -> Some s
              | Dns.Rr.Txt [] | _ -> None)
            records)
  | Ch { server; credentials; domain; org; prop } -> (
      let obj = Clearinghouse.Ch_name.make ~local:hns_name.name ~domain ~org in
      let client = Clearinghouse.Ch_client.connect t.stack ~server ~credentials in
      let result = Clearinghouse.Ch_client.retrieve_item client obj ~prop in
      Clearinghouse.Ch_client.close client;
      match result with
      | Error Clearinghouse.Ch_client.Not_found -> None
      | Error (Clearinghouse.Ch_client.Rpc_error e) ->
          failwith
            (Format.asprintf "Clearinghouse lookup failed: %a" Rpc.Control.pp_error e)
      | Ok s -> Some s)

let lookup t ~service ~(hns_name : Hns.Hns_name.t) =
  let key = Nsm_common.cache_key ~tag:t.tag ~service hns_name in
  match Hns.Cache.find t.cache_ ~key ~ty:Hns.Nsm_intf.text_payload_ty with
  | Some v -> Hns.Nsm_intf.found v
  | None -> (
      Nsm_common.charge t.per_query_ms;
      match backend_lookup t hns_name with
      | None -> Hns.Nsm_intf.not_found
      | Some s ->
          let v = Wire.Value.Str s in
          Hns.Cache.insert t.cache_ ~key ~ty:Hns.Nsm_intf.text_payload_ty
            ~ttl_ms:t.cache_ttl_ms v;
          Hns.Nsm_intf.found v)

let impl t =
  Nsm_common.instrument ~name:("text." ^ t.tag) (fun arg ->
      let service, hns_name = Hns.Nsm_intf.parse_arg arg in
      lookup t ~service ~hns_name)

let serve t ~prog ?vers ?suite ?port ?service_overhead_ms () =
  Nsm_common.serve t.stack ~impl:(impl t) ~payload_ty:Hns.Nsm_intf.text_payload_ty
    ~prog ?vers ?suite ?port ?service_overhead_ms ()
