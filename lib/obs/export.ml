let pp_sample ppf (s : Metrics.sample) =
  match s with
  | Metrics.Count n -> Format.fprintf ppf "%d" n
  | Metrics.Level x -> Format.fprintf ppf "%g" x
  | Metrics.Summary { n; mean; p50; p95; p99; p999; min; max; _ } ->
      if n = 0 then Format.fprintf ppf "(no samples)"
      else
        Format.fprintf ppf
          "n=%d mean=%.2f p50=%.2f p95=%.2f p99=%.2f p999=%.2f min=%.2f max=%.2f" n
          mean p50 p95 p99 p999 min max

let pp_metrics ppf () =
  let rows = Metrics.snapshot () in
  if rows = [] then Format.fprintf ppf "(no metrics registered)@."
  else begin
    let width =
      List.fold_left (fun acc (name, _) -> Stdlib.max acc (String.length name)) 0 rows
    in
    List.iter
      (fun (name, sample) ->
        Format.fprintf ppf "%-*s  %a@." width name pp_sample sample)
      rows
  end

let sample_json (s : Metrics.sample) =
  match s with
  | Metrics.Count n ->
      Json.Obj [ ("type", Json.Str "counter"); ("value", Json.Num (float_of_int n)) ]
  | Metrics.Level x -> Json.Obj [ ("type", Json.Str "gauge"); ("value", Json.Num x) ]
  | Metrics.Summary { n; total; mean; p50; p95; p99; p999; min; max } ->
      Json.Obj
        [
          ("type", Json.Str "histogram");
          ("n", Json.Num (float_of_int n));
          ("total_ms", Json.Num total);
          ("mean_ms", Json.Num mean);
          ("p50_ms", Json.Num p50);
          ("p95_ms", Json.Num p95);
          ("p99_ms", Json.Num p99);
          ("p999_ms", Json.Num p999);
          ("min_ms", Json.Num min);
          ("max_ms", Json.Num max);
        ]

let metrics_json () =
  Json.Obj (List.map (fun (name, s) -> (name, sample_json s)) (Metrics.snapshot ()))

let metrics_json_lines () =
  Metrics.snapshot ()
  |> List.map (fun (name, s) ->
         match sample_json s with
         | Json.Obj fields -> Json.to_string (Json.Obj (("metric", Json.Str name) :: fields))
         | other -> Json.to_string other)
  |> String.concat "\n"

let pp_delta ppf ~before ~after =
  let old name = List.assoc_opt name before in
  let changes =
    List.filter_map
      (fun (name, now) ->
        match (old name, now) with
        | Some (Metrics.Count a), Metrics.Count b when a = b -> None
        | Some (Metrics.Count a), Metrics.Count b -> Some (name, `Count (b - a))
        | None, Metrics.Count b when b = 0 -> None
        | None, Metrics.Count b -> Some (name, `Count b)
        | Some (Metrics.Level a), Metrics.Level b when a = b -> None
        | _, Metrics.Level b -> Some (name, `Level b)
        | Some (Metrics.Summary a), Metrics.Summary b when a.n = b.n -> None
        | prev, Metrics.Summary b ->
            let a_n, a_total =
              match prev with
              | Some (Metrics.Summary a) -> (a.n, a.total)
              | _ -> (0, 0.0)
            in
            let dn = b.n - a_n in
            Some (name, `Obs (dn, (b.total -. a_total) /. float_of_int dn))
        | _, Metrics.Count _ -> None)
      after
  in
  if changes = [] then Format.fprintf ppf "(no metric changes)@."
  else begin
    let width =
      List.fold_left (fun acc (name, _) -> Stdlib.max acc (String.length name)) 0 changes
    in
    List.iter
      (fun (name, change) ->
        match change with
        | `Count d -> Format.fprintf ppf "%-*s  %+d@." width name d
        | `Level x -> Format.fprintf ppf "%-*s  -> %g@." width name x
        | `Obs (n, mean) ->
            Format.fprintf ppf "%-*s  +%d observations, mean %.2f ms@." width name n mean)
      changes
  end

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc contents;
      output_char oc '\n')

(* Publishing SLOs first means every snapshot automatically carries
   the current slo.<name>.* gauges alongside the raw instruments. *)
let write_metrics_snapshot ~path () =
  Slo.publish ();
  write_file path
    (Json.to_string_pretty
       (Json.Obj [ ("schema", Json.Str "hns-obs/1"); ("metrics", metrics_json ()) ]))

let bench_json rows =
  let experiment (name, stats) =
    let n = Sim.Stats.count stats in
    let num f = if n = 0 then Json.Null else Json.Num f in
    let pct p = if n = 0 then 0.0 else Sim.Stats.percentile stats p in
    Json.Obj
      [
        ("name", Json.Str name);
        ("n", Json.Num (float_of_int n));
        ("mean_ms", num (Sim.Stats.mean stats));
        ("p50_ms", num (if n = 0 then 0.0 else Sim.Stats.median stats));
        ("p95_ms", num (pct 95.0));
        ("p99_ms", num (pct 99.0));
        ("p999_ms", num (pct 99.9));
        ("min_ms", num (Sim.Stats.min_value stats));
        ("max_ms", num (Sim.Stats.max_value stats));
      ]
  in
  Json.Obj
    [
      ("schema", Json.Str "hns-bench/2");
      ("experiments", Json.List (List.map experiment rows));
    ]

let write_bench_json ~path rows =
  write_file path (Json.to_string_pretty (bench_json rows))

let spans_json () =
  Json.Obj [ ("schema", Json.Str "hns-spans/1"); ("spans", Span.to_json ()) ]

let qlog_json () =
  Json.Obj [ ("schema", Json.Str "hns-qlog/1"); ("records", Qlog.to_json ()) ]
