(** Exporters for the metrics registry and the span tracer.

    Three audiences: a human at the CLI ({!pp_metrics}, {!pp_delta},
    {!Span.pp_tree}), a log pipeline ({!metrics_json_lines}), and the
    bench trajectory ({!write_metrics_snapshot} producing
    [BENCH_obs.json], {!write_bench_json} producing [BENCH_hns.json]). *)

(** Render every registered metric as an aligned table, counters and
    gauges one per line, histograms as [n/mean/p50/p95/min/max]. *)
val pp_metrics : Format.formatter -> unit -> unit

(** The whole registry as one JSON object keyed by metric name. *)
val metrics_json : unit -> Json.t

(** One compact JSON object per line per metric
    ([{"metric":...,"type":...,...}]), for line-oriented consumers. *)
val metrics_json_lines : unit -> string

(** [pp_delta ppf ~before ~after] prints only what changed between two
    {!Metrics.snapshot}s: counter and gauge deltas, and for histograms
    the number of new observations with their mean. *)
val pp_delta :
  Format.formatter ->
  before:(string * Metrics.sample) list ->
  after:(string * Metrics.sample) list ->
  unit

(** [write_metrics_snapshot ~path ()] publishes every SLO into the
    registry ({!Slo.publish}) and writes it as a [BENCH_obs.json]
    document: [{"schema":"hns-obs/1","metrics":{...}}]. *)
val write_metrics_snapshot : path:string -> unit -> unit

(** [bench_json rows] builds the [BENCH_hns.json] document from named
    sample sets: [{"schema":"hns-bench/2","experiments":[{"name","n",
    "mean_ms","p50_ms","p95_ms","p99_ms","p999_ms","min_ms","max_ms"},
    ...]}]. Rows with no samples are emitted with [n = 0] and null
    statistics. *)
val bench_json : (string * Sim.Stats.t) list -> Json.t

val write_bench_json : path:string -> (string * Sim.Stats.t) list -> unit

(** Spans of the global tracer as a [{"schema":"hns-spans/1",
    "spans":[...]}] document. *)
val spans_json : unit -> Json.t

(** Flight-recorder ring as a [{"schema":"hns-qlog/1",
    "records":[...]}] document. *)
val qlog_json : unit -> Json.t
