type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* --- printing ------------------------------------------------------- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let number_to_string x =
  if Float.is_nan x then "null" (* JSON has no NaN; degrade gracefully *)
  else if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.12g" x

let rec write ~indent ~level buf v =
  let nl n =
    if indent then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * n) ' ')
    end
  in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num x -> Buffer.add_string buf (number_to_string x)
  | Str s -> escape buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          nl (level + 1);
          write ~indent ~level:(level + 1) buf item)
        items;
      nl level;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, fv) ->
          if i > 0 then Buffer.add_char buf ',';
          nl (level + 1);
          escape buf k;
          Buffer.add_string buf (if indent then ": " else ":");
          write ~indent ~level:(level + 1) buf fv)
        fields;
      nl level;
      Buffer.add_char buf '}'

let render ~indent v =
  let buf = Buffer.create 256 in
  write ~indent ~level:0 buf v;
  Buffer.contents buf

let to_string v = render ~indent:false v
let to_string_pretty v = render ~indent:true v

(* --- parsing -------------------------------------------------------- *)

type cursor = { src : string; mutable pos : int }

let fail cur msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg cur.pos))

let peek cur = if cur.pos < String.length cur.src then Some cur.src.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let skip_ws cur =
  let rec go () =
    match peek cur with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance cur;
        go ()
    | _ -> ()
  in
  go ()

let expect cur c =
  match peek cur with
  | Some d when d = c -> advance cur
  | _ -> fail cur (Printf.sprintf "expected %C" c)

let literal cur word value =
  if
    cur.pos + String.length word <= String.length cur.src
    && String.sub cur.src cur.pos (String.length word) = word
  then begin
    cur.pos <- cur.pos + String.length word;
    value
  end
  else fail cur (Printf.sprintf "expected %s" word)

let parse_string cur =
  expect cur '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek cur with
    | None -> fail cur "unterminated string"
    | Some '"' -> advance cur
    | Some '\\' -> (
        advance cur;
        match peek cur with
        | None -> fail cur "unterminated escape"
        | Some c ->
            advance cur;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                if cur.pos + 4 > String.length cur.src then fail cur "short \\u escape";
                let hex = String.sub cur.src cur.pos 4 in
                cur.pos <- cur.pos + 4;
                let code =
                  try int_of_string ("0x" ^ hex)
                  with _ -> fail cur "bad \\u escape"
                in
                (* Code points above 0xFF only appear in our output via
                   control-character escapes, so a byte is enough. *)
                if code < 0x100 then Buffer.add_char buf (Char.chr code)
                else Buffer.add_string buf (Printf.sprintf "\\u%04x" code)
            | _ -> fail cur "bad escape");
            go ())
    | Some c ->
        advance cur;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number cur =
  let start = cur.pos in
  let is_num_char c =
    match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  while match peek cur with Some c when is_num_char c -> true | _ -> false do
    advance cur
  done;
  let text = String.sub cur.src start (cur.pos - start) in
  match float_of_string_opt text with
  | Some x -> Num x
  | None -> fail cur (Printf.sprintf "bad number %S" text)

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> fail cur "unexpected end of input"
  | Some 'n' -> literal cur "null" Null
  | Some 't' -> literal cur "true" (Bool true)
  | Some 'f' -> literal cur "false" (Bool false)
  | Some '"' -> Str (parse_string cur)
  | Some '[' ->
      advance cur;
      skip_ws cur;
      if peek cur = Some ']' then begin
        advance cur;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value cur in
          skip_ws cur;
          match peek cur with
          | Some ',' ->
              advance cur;
              items (v :: acc)
          | Some ']' ->
              advance cur;
              List.rev (v :: acc)
          | _ -> fail cur "expected ',' or ']'"
        in
        List (items [])
      end
  | Some '{' ->
      advance cur;
      skip_ws cur;
      if peek cur = Some '}' then begin
        advance cur;
        Obj []
      end
      else begin
        let field () =
          skip_ws cur;
          let k = parse_string cur in
          skip_ws cur;
          expect cur ':';
          let v = parse_value cur in
          (k, v)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws cur;
          match peek cur with
          | Some ',' ->
              advance cur;
              fields (kv :: acc)
          | Some '}' ->
              advance cur;
              List.rev (kv :: acc)
          | _ -> fail cur "expected ',' or '}'"
        in
        Obj (fields [])
      end
  | Some ('0' .. '9' | '-') -> parse_number cur
  | Some c -> fail cur (Printf.sprintf "unexpected %C" c)

let of_string s =
  let cur = { src = s; pos = 0 } in
  let v = parse_value cur in
  skip_ws cur;
  if cur.pos <> String.length s then fail cur "trailing garbage";
  v

(* --- accessors ------------------------------------------------------ *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let get key v =
  match member key v with
  | Some f -> f
  | None -> raise (Parse_error (Printf.sprintf "missing member %S" key))

let to_float = function
  | Num x -> x
  | _ -> raise (Parse_error "expected number")

let to_int v = int_of_float (to_float v)

let to_str = function
  | Str s -> s
  | _ -> raise (Parse_error "expected string")

let to_list = function
  | List items -> items
  | _ -> raise (Parse_error "expected array")

let to_obj = function
  | Obj fields -> fields
  | _ -> raise (Parse_error "expected object")
