(** A minimal JSON tree, printer and parser.

    The observability exporters need machine-readable output and the
    tests need to read it back; the container has no JSON library, so
    this is a small, self-contained implementation covering the JSON
    the exporters emit (standard RFC 8259 syntax, numbers as floats). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(** Compact one-line rendering; strings are escaped, integral numbers
    print without a decimal point, other numbers with enough digits to
    round-trip. *)
val to_string : t -> string

(** Multi-line rendering with two-space indentation. *)
val to_string_pretty : t -> string

(** Parse a complete JSON document. Raises {!Parse_error} on syntax
    errors or trailing garbage. *)
val of_string : string -> t

(** {1 Accessors} — each raises [Parse_error] on a shape mismatch so
    test assertions read naturally. *)

val member : string -> t -> t option
val get : string -> t -> t
val to_float : t -> float
val to_int : t -> int
val to_str : t -> string
val to_list : t -> t list
val to_obj : t -> (string * t) list
