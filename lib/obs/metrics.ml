type counter = { c_name : string; mutable count : int }
type gauge = { g_name : string; mutable level : float }
type histogram = { h_name : string; stats_ : Sim.Stats.t }

type metric =
  | M_counter of counter
  | M_gauge of gauge
  | M_histogram of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let kind_name = function
  | M_counter _ -> "counter"
  | M_gauge _ -> "gauge"
  | M_histogram _ -> "histogram"

let validate_name name =
  let ok_char c =
    match c with 'a' .. 'z' | '0' .. '9' | '.' | '_' | '-' -> true | _ -> false
  in
  if name = "" || not (String.for_all ok_char name) then
    invalid_arg
      (Printf.sprintf
         "Obs.Metrics: %S is not a layer.component.metric name (lowercase, digits, \
          '.', '_', '-')"
         name)

let register name ~make ~cast ~want =
  match Hashtbl.find_opt registry name with
  | Some m -> (
      match cast m with
      | Some v -> v
      | None ->
          invalid_arg
            (Printf.sprintf "Obs.Metrics: %S is registered as a %s, wanted a %s" name
               (kind_name m) want))
  | None ->
      validate_name name;
      let v = make () in
      v

let counter name =
  register name ~want:"counter"
    ~cast:(function M_counter c -> Some c | _ -> None)
    ~make:(fun () ->
      let c = { c_name = name; count = 0 } in
      Hashtbl.replace registry name (M_counter c);
      c)

let incr c = c.count <- c.count + 1
let add c n = c.count <- c.count + n
let value c = c.count

let gauge name =
  register name ~want:"gauge"
    ~cast:(function M_gauge g -> Some g | _ -> None)
    ~make:(fun () ->
      let g = { g_name = name; level = 0.0 } in
      Hashtbl.replace registry name (M_gauge g);
      g)

let set g x = g.level <- x
let get g = g.level

let histogram name =
  register name ~want:"histogram"
    ~cast:(function M_histogram h -> Some h | _ -> None)
    ~make:(fun () ->
      let h = { h_name = name; stats_ = Sim.Stats.create ~name () } in
      Hashtbl.replace registry name (M_histogram h);
      h)

let observe h x = Sim.Stats.add h.stats_ x
let stats h = h.stats_

let now_ms () = try Sim.Engine.time () with Effect.Unhandled _ -> 0.0

let time h f =
  let t0 = now_ms () in
  let finally () = observe h (now_ms () -. t0) in
  Fun.protect ~finally f

type sample =
  | Count of int
  | Level of float
  | Summary of {
      n : int;
      total : float;
      mean : float;
      p50 : float;
      p95 : float;
      p99 : float;
      p999 : float;
      min : float;
      max : float;
    }

let sample_of = function
  | M_counter c -> Count c.count
  | M_gauge g -> Level g.level
  | M_histogram h ->
      let s = h.stats_ in
      let n = Sim.Stats.count s in
      if n = 0 then
        Summary
          {
            n = 0;
            total = 0.0;
            mean = 0.0;
            p50 = 0.0;
            p95 = 0.0;
            p99 = 0.0;
            p999 = 0.0;
            min = 0.0;
            max = 0.0;
          }
      else
        Summary
          {
            n;
            total = Sim.Stats.total s;
            mean = Sim.Stats.mean s;
            p50 = Sim.Stats.median s;
            p95 = Sim.Stats.percentile s 95.0;
            p99 = Sim.Stats.percentile s 99.0;
            p999 = Sim.Stats.percentile s 99.9;
            min = Sim.Stats.min_value s;
            max = Sim.Stats.max_value s;
          }

let snapshot () =
  Hashtbl.fold (fun name m acc -> (name, sample_of m) :: acc) registry []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let find name = Option.map sample_of (Hashtbl.find_opt registry name)

(* The charset is enforced at registration; structure is linted after
   the fact so a run can register freely and `make obs` still catches a
   two-segment name like "hrpc.backoff_ms" sneaking in. *)
let lint () =
  let structure name =
    let segments = String.split_on_char '.' name in
    if List.length segments < 3 then
      Some
        (Printf.sprintf "%S has %d dot-separated segments, want layer.component.metric"
           name (List.length segments))
    else if List.exists (fun s -> s = "") segments then
      Some (Printf.sprintf "%S has an empty segment" name)
    else None
  in
  Hashtbl.fold (fun name _ acc -> acc @ Option.to_list (structure name)) registry []
  |> List.sort String.compare

let reset () =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | M_counter c -> c.count <- 0
      | M_gauge g -> g.level <- 0.0
      | M_histogram h -> Sim.Stats.clear h.stats_)
    registry

(* The *_name fields exist for future per-instrument rendering; keep
   the compiler satisfied that they are read. *)
let _ = fun (c : counter) -> c.c_name
let _ = fun (g : gauge) -> g.g_name
let _ = fun (h : histogram) -> h.h_name
