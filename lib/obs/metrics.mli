(** Process-wide metrics registry.

    One global registry holds every named instrument so that any layer
    (transport, HRPC, HNS, NSMs) can account events without plumbing a
    handle through its API, and so the CLI / bench can dump a complete
    panel at the end of a run.

    Names follow the [layer.component.metric] convention, e.g.
    [transport.netstack.packets_sent] or [hns.cache.marshalled.hits].

    Instruments are cheap enough to leave always-on: callers obtain a
    handle once (one hashtable lookup, typically from a module-level
    [let]) and then pay one mutable-field update per event. Latency
    histograms are backed by {!Sim.Stats} and measure {e virtual}
    milliseconds — the same clock every paper reproduction number is
    quoted in. *)

type counter
type gauge
type histogram

(** [counter name] returns the counter registered under [name],
    creating it at zero on first use. Raises [Invalid_argument] if
    [name] is already registered as a different kind of instrument or
    is not a dotted lowercase identifier. *)
val counter : string -> counter

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

(** Same get-or-create contract as {!counter}. *)
val gauge : string -> gauge

val set : gauge -> float -> unit
val get : gauge -> float

(** Same get-or-create contract as {!counter}. *)
val histogram : string -> histogram

val observe : histogram -> float -> unit
val stats : histogram -> Sim.Stats.t

(** [time hist f] runs [f] and observes its duration on the virtual
    clock (no charge when called outside a simulated process — the
    observation is then [0.]). *)
val time : histogram -> (unit -> 'a) -> 'a

(** Virtual time now, [0.] outside a simulated process. *)
val now_ms : unit -> float

(** {1 Reading the registry} *)

type sample =
  | Count of int
  | Level of float
  | Summary of {
      n : int;
      total : float;
      mean : float;
      p50 : float;
      p95 : float;
      p99 : float;
      p999 : float;
      min : float;
      max : float;
    }

(** All registered instruments with their current values, sorted by
    name. Histograms with no observations report an all-zero summary. *)
val snapshot : unit -> (string * sample) list

val find : string -> sample option

(** Structural lint over every registered name: each must have at
    least three dot-separated, non-empty segments
    ([layer.component.metric]). Returns one message per violation,
    sorted; empty means clean. (Kind clashes — the same name as two
    instrument kinds — already fail fast at registration.) *)
val lint : unit -> string list

(** Zero every instrument {e without} invalidating handles held by
    instrumented modules: counters and gauges go to zero, histograms
    forget their samples. Registrations survive. *)
val reset : unit -> unit
