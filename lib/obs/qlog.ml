type outcome = Hit | Miss | Coalesced | Negative | Stale | Failover | Failed

(* Upgrades only: a query starts as a cache hit and is reclassified as
   evidence of worse accumulates (a remote round trip, a stale serve, a
   failover...). The numeric rank orders "worse". *)
let rank = function
  | Hit -> 0
  | Miss -> 1
  | Coalesced -> 2
  | Negative -> 3
  | Stale -> 4
  | Failover -> 5
  | Failed -> 6

let outcome_to_string = function
  | Hit -> "hit"
  | Miss -> "miss"
  | Coalesced -> "coalesced"
  | Negative -> "negative"
  | Stale -> "stale"
  | Failover -> "failover"
  | Failed -> "failed"

let outcome_of_string = function
  | "hit" -> Some Hit
  | "miss" -> Some Miss
  | "coalesced" -> Some Coalesced
  | "negative" -> Some Negative
  | "stale" -> Some Stale
  | "failover" -> Some Failover
  | "failed" -> Some Failed
  | _ -> None

type record = {
  qid : int;
  name : string;
  query_class : string;
  pid : int;
  mutable trace : int; (* 0 when tracing was off *)
  start_ms : float;
  mutable end_ms : float;
  mutable outcome : outcome;
  mutable hops : (string * float) list; (* newest first internally *)
  mutable bytes : int;
  mutable servers : string list; (* newest first internally, deduped *)
  mutable linked_trace : int; (* coalesced follower -> leader's trace *)
  mutable error : string option;
}

let max_retained = 2048

type state = {
  mutable on : bool;
  mutable next_qid : int;
  ring : record Queue.t; (* oldest first, bounded *)
  mutable dropped_count : int;
  active : (int, record list) Hashtbl.t; (* per-fiber, innermost first *)
}

let st =
  {
    on = false;
    next_qid = 1;
    ring = Queue.create ();
    dropped_count = 0;
    active = Hashtbl.create 16;
  }

let enable () = st.on <- true
let disable () = st.on <- false
let enabled () = st.on

let clear () =
  st.next_qid <- 1;
  Queue.clear st.ring;
  st.dropped_count <- 0;
  Hashtbl.reset st.active

let now_ms () = try Sim.Engine.time () with Effect.Unhandled _ -> 0.0
let self_pid () = try Sim.Engine.self_pid () with Effect.Unhandled _ -> 0

let active_stack pid = Option.value (Hashtbl.find_opt st.active pid) ~default:[]

let set_active pid = function
  | [] -> Hashtbl.remove st.active pid
  | stack -> Hashtbl.replace st.active pid stack

let current () =
  if not st.on then None
  else match active_stack (self_pid ()) with [] -> None | r :: _ -> Some r

let retire r =
  Queue.push r st.ring;
  if Queue.length st.ring > max_retained then begin
    ignore (Queue.pop st.ring);
    st.dropped_count <- st.dropped_count + 1
  end

let with_query ~name ~query_class f =
  if not st.on then f ()
  else begin
    let pid = self_pid () in
    let r =
      {
        qid = st.next_qid;
        name;
        query_class;
        pid;
        trace = Span.current_trace ();
        start_ms = now_ms ();
        end_ms = nan;
        outcome = Hit;
        hops = [];
        bytes = 0;
        servers = [];
        linked_trace = 0;
        error = None;
      }
    in
    st.next_qid <- st.next_qid + 1;
    set_active pid (r :: active_stack pid);
    Fun.protect
      ~finally:(fun () ->
        r.end_ms <- now_ms ();
        (match active_stack pid with
        | top :: rest when top == r -> set_active pid rest
        | stack -> set_active pid (List.filter (fun x -> x != r) stack));
        retire r)
      f
  end

(* Annotations from the inner layers: each applies to the calling
   fiber's innermost in-flight record, and is a no-op when the
   recorder is off or no query is open. *)

let note_outcome o =
  match current () with
  | Some r when rank o > rank r.outcome -> r.outcome <- o
  | _ -> ()

let note_hop label ms =
  match current () with Some r -> r.hops <- (label, ms) :: r.hops | None -> ()

let add_bytes n =
  match current () with Some r -> r.bytes <- r.bytes + n | None -> ()

let note_server s =
  match current () with
  | Some r -> if not (List.mem s r.servers) then r.servers <- s :: r.servers
  | None -> ()

let note_trace trace =
  match current () with
  | Some r when r.trace = 0 -> r.trace <- trace
  | _ -> ()

let note_link trace =
  match current () with
  | Some r ->
      r.linked_trace <- trace;
      if rank Coalesced > rank r.outcome then r.outcome <- Coalesced
  | None -> ()

let note_error msg =
  match current () with
  | Some r ->
      r.error <- Some msg;
      r.outcome <- Failed
  | None -> ()

let records () = List.of_seq (Queue.to_seq st.ring)
let dropped () = st.dropped_count
let duration_ms r = r.end_ms -. r.start_ms
let hops r = List.rev r.hops
let servers r = List.rev r.servers

let record_json r =
  Json.Obj
    [
      ("qid", Json.Num (float_of_int r.qid));
      ("name", Json.Str r.name);
      ("query_class", Json.Str r.query_class);
      ("pid", Json.Num (float_of_int r.pid));
      ( "trace",
        if r.trace = 0 then Json.Null else Json.Num (float_of_int r.trace) );
      ( "linked_trace",
        if r.linked_trace = 0 then Json.Null
        else Json.Num (float_of_int r.linked_trace) );
      ("outcome", Json.Str (outcome_to_string r.outcome));
      ("start_ms", Json.Num r.start_ms);
      ("end_ms", Json.Num r.end_ms);
      ("dur_ms", Json.Num (duration_ms r));
      ( "hops",
        Json.List
          (List.map
             (fun (label, ms) ->
               Json.Obj [ ("hop", Json.Str label); ("ms", Json.Num ms) ])
             (hops r)) );
      ("bytes", Json.Num (float_of_int r.bytes));
      ("servers", Json.List (List.map (fun s -> Json.Str s) (servers r)));
      ( "error",
        match r.error with None -> Json.Null | Some m -> Json.Str m );
    ]

let to_json () = Json.List (List.map record_json (records ()))

let json_lines () =
  records () |> List.map (fun r -> Json.to_string (record_json r)) |> String.concat "\n"

(* {1 Filters (for the CLI and tests)} *)

let slowest n rs =
  let by_dur a b = compare (duration_ms b) (duration_ms a) in
  let sorted = List.stable_sort by_dur rs in
  List.filteri (fun i _ -> i < n) sorted

let by_outcome o rs = List.filter (fun r -> r.outcome = o) rs

let by_context ctx rs =
  List.filter
    (fun r ->
      match String.index_opt r.name '!' with
      | Some i -> String.sub r.name 0 i = ctx
      | None -> r.name = ctx)
    rs
