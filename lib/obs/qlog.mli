(** The query flight recorder: a bounded ring of structured per-query
    records explaining where each resolution's time went.

    One record per top-level query (a [Hns.Client.resolve], an agent
    request, a bare FindNSM), annotated by the inner layers as the
    query descends: per-hop timings from the meta client and the NSM
    interface, bytes on the wire, servers touched, and an outcome
    classification. Records carry the trace id of the query's span
    tree, so a slow record cross-references its full trace.

    Like {!Span}, recording is per-fiber (keyed by
    {!Sim.Engine.self_pid}): records opened by interleaved simulated
    processes do not contaminate each other's annotations. Disabled by
    default; every entry point is one branch when off. *)

type outcome =
  | Hit  (** answered entirely from cache *)
  | Miss  (** at least one remote meta round trip *)
  | Coalesced  (** rode another query's in-flight work *)
  | Negative  (** answered from the negative cache *)
  | Stale  (** served an expired entry under backend failure *)
  | Failover  (** an alternate server answered *)
  | Failed  (** returned an error *)

val outcome_to_string : outcome -> string
val outcome_of_string : string -> outcome option

type record = {
  qid : int;
  name : string;
  query_class : string;
  pid : int;
  mutable trace : int;  (** trace id of the query's span tree, 0 when untraced *)
  start_ms : float;
  mutable end_ms : float;
  mutable outcome : outcome;
  mutable hops : (string * float) list;
  mutable bytes : int;
  mutable servers : string list;
  mutable linked_trace : int;  (** leader's trace id for coalesced followers *)
  mutable error : string option;
}

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool

(** Forget all records and rewind the id counter. *)
val clear : unit -> unit

(** [with_query ~name ~query_class f] runs [f] under a fresh in-flight
    record for the calling fiber (retired into the ring even if [f]
    raises). Just [f ()] when disabled. Queries nest; annotations
    apply to the innermost. *)
val with_query : name:string -> query_class:string -> (unit -> 'a) -> 'a

(** {1 Annotations}

    Each applies to the calling fiber's innermost in-flight record;
    no-ops when the recorder is off or no query is open. *)

(** Reclassify the record's outcome; only upgrades stick (a [Stale]
    never downgrades back to [Miss]). *)
val note_outcome : outcome -> unit

(** Append a per-hop timing ([label], virtual ms). *)
val note_hop : string -> float -> unit

(** Add wire bytes (request + reply) to the record's total. *)
val add_bytes : int -> unit

(** Record a server touched (deduplicated, insertion order kept). *)
val note_server : string -> unit

(** Set the record's trace id if it has none yet (the record may open
    before its root span does). *)
val note_trace : int -> unit

(** Coalesced-follower link: remember the leader's trace id and
    upgrade the outcome to [Coalesced]. *)
val note_link : int -> unit

(** Record an error message and classify the record [Failed]. *)
val note_error : string -> unit

(** {1 Reading the ring} *)

(** Retired records, oldest first. At most [2048] are retained. *)
val records : unit -> record list

val dropped : unit -> int
val duration_ms : record -> float

(** Hops / servers in insertion order. *)
val hops : record -> (string * float) list

val servers : record -> string list

val record_json : record -> Json.t

(** All records as a JSON array. *)
val to_json : unit -> Json.t

(** One compact JSON object per line per record. *)
val json_lines : unit -> string

(** {1 Filters} *)

(** [slowest n rs] — the [n] longest records, longest first (stable
    for ties). *)
val slowest : int -> record list -> record list

val by_outcome : outcome -> record list -> record list

(** Records whose queried name lives in [context] (the part before
    ['!'], or the whole name when there is none). *)
val by_context : string -> record list -> record list
