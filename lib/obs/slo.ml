(* A service-level objective: a latency target plus the fraction of
   queries that must meet it, tracked both over the whole run (error
   budget) and over a sliding window of virtual time (burn rate). *)

type t = {
  slo_name : string;
  target_ms : float;
  objective : float; (* fraction that must meet the target, e.g. 0.99 *)
  lat_window : Timeseries.t; (* all windowed latencies *)
  breach_window : Timeseries.t; (* one 1.0 sample per windowed breach *)
  mutable total : int;
  mutable breaches : int;
}

let registry : (string, t) Hashtbl.t = Hashtbl.create 8

(* Tail exemplars: trace ids of queries that breached their SLO or
   landed beyond the window p99, newest first. The heavy payload (span
   tree, qlog record) is materialised lazily at export time from the
   Span / Qlog rings, so a breach costs one list cons. *)
let max_exemplars = 64

type exemplar = { ex_slo : string; ex_trace : int }

let exemplar_ring : exemplar list ref = ref []

let retain_exemplar t trace =
  if trace <> 0 && not (List.exists (fun e -> e.ex_trace = trace) !exemplar_ring)
  then begin
    exemplar_ring := { ex_slo = t.slo_name; ex_trace = trace } :: !exemplar_ring;
    exemplar_ring := List.filteri (fun i _ -> i < max_exemplars) !exemplar_ring
  end

let validate_name name =
  let ok_char = function
    | 'a' .. 'z' | '0' .. '9' | '_' | '-' -> true
    | _ -> false
  in
  if name = "" || not (String.for_all ok_char name) then
    invalid_arg
      (Printf.sprintf
         "Obs.Slo: %S is not a bare SLO name (lowercase, digits, '_', '-'; it \
          becomes the middle segment of slo.%s.* metrics)"
         name name)

let get_or_create ?(target_ms = 50.0) ?(objective = 0.99) ?(window_ms = 60_000.0)
    name =
  match Hashtbl.find_opt registry name with
  | Some t -> t
  | None ->
      validate_name name;
      if objective <= 0.0 || objective >= 1.0 then
        invalid_arg "Obs.Slo: objective must be strictly between 0 and 1";
      let t =
        {
          slo_name = name;
          target_ms;
          objective;
          lat_window = Timeseries.create ~window_ms ();
          breach_window = Timeseries.create ~window_ms ();
          total = 0;
          breaches = 0;
        }
      in
      Hashtbl.replace registry name t;
      t

let find name = Hashtbl.find_opt registry name
let all () =
  Hashtbl.fold (fun _ t acc -> t :: acc) registry []
  |> List.sort (fun a b -> String.compare a.slo_name b.slo_name)

let name t = t.slo_name
let target_ms t = t.target_ms
let objective t = t.objective
let total t = t.total
let breaches t = t.breaches

(* A query beyond the current window p99 is not an SLO breach, but it
   is a tail event worth an exemplar; only meaningful once the window
   has enough samples to make p99 honest. *)
let tail_threshold t =
  if Timeseries.count t.lat_window >= 20 then
    Some (Timeseries.percentile t.lat_window 99.0)
  else None

let observe t ?(ok = true) latency_ms =
  let breach = (not ok) || latency_ms > t.target_ms in
  let tail =
    match tail_threshold t with Some p99 -> latency_ms > p99 | None -> false
  in
  Timeseries.observe t.lat_window latency_ms;
  if breach then begin
    t.breaches <- t.breaches + 1;
    Timeseries.observe t.breach_window 1.0
  end;
  t.total <- t.total + 1;
  if breach || tail then retain_exemplar t (Span.current_trace ())

(* {1 Budget arithmetic} *)

let compliance t =
  if t.total = 0 then 1.0
  else float_of_int (t.total - t.breaches) /. float_of_int t.total

let compliant t = compliance t >= t.objective

(* Fraction of the error budget still unspent over the whole run; can
   go negative once the budget is blown. *)
let budget_remaining t =
  if t.total = 0 then 1.0
  else
    let breach_frac = float_of_int t.breaches /. float_of_int t.total in
    1.0 -. (breach_frac /. (1.0 -. t.objective))

(* Windowed burn rate: 1.0 means breaching at exactly the budgeted
   rate; above 1.0 the budget is being spent faster than allowed. *)
let burn_rate t =
  let n = Timeseries.count t.lat_window in
  if n = 0 then 0.0
  else
    let windowed_breaches = float_of_int (Timeseries.count t.breach_window) in
    windowed_breaches /. float_of_int n /. (1.0 -. t.objective)

let window_summary t = Timeseries.summary t.lat_window

(* {1 Publication} *)

(* Mirror every SLO into the metrics registry as slo.<name>.* gauges,
   so BENCH_obs.json and `hns_cli stats` pick them up with no new
   export path. *)
let publish () =
  List.iter
    (fun t ->
      let set suffix v = Metrics.set (Metrics.gauge ("slo." ^ t.slo_name ^ "." ^ suffix)) v in
      let w = window_summary t in
      set "target_ms" t.target_ms;
      set "objective" t.objective;
      set "total" (float_of_int t.total);
      set "breaches" (float_of_int t.breaches);
      set "compliance" (compliance t);
      set "budget_remaining" (budget_remaining t);
      set "burn_rate" (burn_rate t);
      set "window_n" (float_of_int w.Timeseries.n);
      set "window_rate_per_s" w.Timeseries.rate_per_s;
      set "window_p50_ms" w.Timeseries.p50;
      set "window_p99_ms" w.Timeseries.p99;
      set "window_p999_ms" w.Timeseries.p999)
    (all ())

(* {1 Exemplars} *)

let exemplar_traces () = List.map (fun e -> e.ex_trace) !exemplar_ring

let exemplar_json trace =
  let spans =
    List.filter (fun s -> s.Span.trace = trace) (Span.finished ())
  in
  let records =
    List.filter
      (fun r -> r.Qlog.trace = trace || r.Qlog.linked_trace = trace)
      (Qlog.records ())
  in
  Json.Obj
    [
      ("trace", Json.Num (float_of_int trace));
      ( "spans",
        Json.List
          (List.map
             (fun s ->
               Json.Obj
                 [
                   ("id", Json.Num (float_of_int s.Span.id));
                   ( "parent",
                     match s.Span.parent with
                     | None -> Json.Null
                     | Some p -> Json.Num (float_of_int p) );
                   ("remote", Json.Bool s.Span.remote);
                   ("pid", Json.Num (float_of_int s.Span.pid));
                   ("name", Json.Str s.Span.name);
                   ("start_ms", Json.Num s.Span.start_ms);
                   ("end_ms", Json.Num s.Span.end_ms);
                 ])
             spans) );
      ("records", Json.List (List.map Qlog.record_json records));
    ]

let exemplars_json () =
  Json.List
    (List.map
       (fun e ->
         match exemplar_json e.ex_trace with
         | Json.Obj fields -> Json.Obj (("slo", Json.Str e.ex_slo) :: fields)
         | other -> other)
       !exemplar_ring)

let clear () =
  Hashtbl.reset registry;
  exemplar_ring := []
