(** Service-level objectives over virtual time.

    An SLO is a latency target plus the fraction of queries that must
    meet it (the {e objective}); the slack — [1 - objective] — is the
    {e error budget}. Each observation either meets the target or
    spends budget. Two horizons are tracked:

    - the whole run: {!compliance} and {!budget_remaining};
    - a sliding window ({!Timeseries}): {!burn_rate} and windowed
      percentiles, answering "how fast are we spending budget now".

    Queries that breach the SLO — or land beyond the window's p99 —
    leave a {e tail exemplar}: their trace id is retained in a bounded
    buffer, and {!exemplar_json} reconstitutes the full span tree and
    flight-recorder records for it at export time.

    {!publish} mirrors every SLO into the {!Metrics} registry as
    [slo.<name>.*] gauges, so SLOs flow into [BENCH_obs.json] and
    [hns_cli stats] through the existing export path. *)

type t

(** [get_or_create name] returns the SLO registered under [name],
    creating it on first use with the given [target_ms] (default
    [50.]), [objective] (fraction in (0, 1), default [0.99]) and
    window span (default one virtual minute). Parameters are fixed at
    creation; later calls with different values return the original.
    Raises [Invalid_argument] for malformed names (the name becomes
    the middle segment of [slo.<name>.*] metric names) or an
    objective outside (0, 1). *)
val get_or_create :
  ?target_ms:float -> ?objective:float -> ?window_ms:float -> string -> t

val find : string -> t option

(** All registered SLOs, sorted by name. *)
val all : unit -> t list

val name : t -> string
val target_ms : t -> float
val objective : t -> float

(** [observe t ~ok latency_ms] records one query. A breach is [not ok]
    or [latency_ms] over the target. Breaches — and tail events beyond
    the window p99, once the window holds at least 20 samples — retain
    the calling fiber's current trace id as an exemplar. *)
val observe : t -> ?ok:bool -> float -> unit

val total : t -> int
val breaches : t -> int

(** Fraction of observations that met the SLO; [1.] before any. *)
val compliance : t -> float

val compliant : t -> bool

(** Unspent fraction of the error budget over the whole run; negative
    once the budget is blown, [1.] before any observation. *)
val budget_remaining : t -> float

(** Windowed breach rate relative to the budgeted rate: [1.] burns
    exactly at budget, above [1.] exhausts the budget early, [0.] with
    an empty window. *)
val burn_rate : t -> float

val window_summary : t -> Timeseries.summary

(** Write every SLO's state into the metrics registry as
    [slo.<name>.{target_ms,objective,total,breaches,compliance,
    budget_remaining,burn_rate,window_n,window_rate_per_s,
    window_p50_ms,window_p99_ms,window_p999_ms}] gauges. *)
val publish : unit -> unit

(** {1 Tail exemplars} *)

(** Trace ids retained as exemplars, newest first (at most [64],
    deduplicated). *)
val exemplar_traces : unit -> int list

(** Span tree and flight-recorder records of one retained trace,
    reconstituted from the {!Span} and {!Qlog} rings. *)
val exemplar_json : int -> Json.t

val exemplars_json : unit -> Json.t

(** Drop every SLO and exemplar. *)
val clear : unit -> unit
