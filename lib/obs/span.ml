type id = int

type span = {
  id : id;
  parent : id option;
  name : string;
  mutable attrs : (string * string) list;
  start_ms : float;
  mutable end_ms : float;
}

let max_retained = 8192

type state = {
  mutable on : bool;
  mutable next_id : int;
  mutable stack : span list; (* innermost first *)
  mutable closed : span list; (* newest first *)
  mutable closed_count : int;
  mutable dropped_count : int;
}

let st =
  { on = false; next_id = 1; stack = []; closed = []; closed_count = 0; dropped_count = 0 }

let enable () = st.on <- true
let disable () = st.on <- false
let enabled () = st.on

let now_ms () = try Sim.Engine.time () with Effect.Unhandled _ -> 0.0

let open_span ?(attrs = []) name =
  if not st.on then 0
  else begin
    let id = st.next_id in
    st.next_id <- st.next_id + 1;
    let parent = match st.stack with [] -> None | s :: _ -> Some s.id in
    let s = { id; parent; name; attrs; start_ms = now_ms (); end_ms = nan } in
    st.stack <- s :: st.stack;
    id
  end

let retire s =
  st.closed <- s :: st.closed;
  st.closed_count <- st.closed_count + 1;
  if st.closed_count > max_retained then begin
    (* Drop the oldest retained span. Linear, but only on overflow of
       an already-large buffer. *)
    (match List.rev st.closed with
    | [] -> ()
    | _oldest :: rest -> st.closed <- List.rev rest);
    st.closed_count <- st.closed_count - 1;
    st.dropped_count <- st.dropped_count + 1
  end

(* Deliberately ignores the enabled flag: a span opened while tracing
   was on must still be closed if tracing gets disabled mid-scope. *)
let close_span id =
  if id <> 0 && List.exists (fun s -> s.id = id) st.stack then begin
    let t = now_ms () in
    let rec pop () =
      match st.stack with
      | [] -> ()
      | s :: rest ->
          st.stack <- rest;
          s.end_ms <- t;
          retire s;
          if s.id <> id then pop ()
    in
    pop ()
  end

let with_span ?attrs name f =
  if not st.on then f ()
  else begin
    let id = open_span ?attrs name in
    Fun.protect ~finally:(fun () -> close_span id) f
  end

let add_attr key value =
  if st.on then
    match st.stack with
    | [] -> ()
    | s :: _ -> s.attrs <- s.attrs @ [ (key, value) ]

let finished () = List.rev st.closed
let open_stack () = List.rev_map (fun s -> (s.id, s.name)) st.stack
let dropped () = st.dropped_count
let duration_ms s = s.end_ms -. s.start_ms

let clear () =
  st.stack <- [];
  st.closed <- [];
  st.closed_count <- 0;
  st.dropped_count <- 0

let pp_attrs ppf attrs =
  List.iter (fun (k, v) -> Format.fprintf ppf " %s=%s" k v) attrs

let pp_tree ppf () =
  let spans = finished () in
  let known = List.map (fun s -> s.id) spans in
  let children parent =
    List.filter (fun s -> s.parent = Some parent) spans
  in
  let roots =
    List.filter
      (fun s ->
        match s.parent with None -> true | Some p -> not (List.mem p known))
      spans
  in
  let rec render depth s =
    Format.fprintf ppf "%s%s (%.1f ms)%a@." (String.make (2 * depth) ' ') s.name
      (duration_ms s) pp_attrs s.attrs;
    List.iter (render (depth + 1)) (children s.id)
  in
  List.iter (render 0) roots;
  if st.dropped_count > 0 then
    Format.fprintf ppf "(%d older spans dropped)@." st.dropped_count

let to_json () =
  Json.List
    (List.map
       (fun s ->
         Json.Obj
           [
             ("id", Json.Num (float_of_int s.id));
             ( "parent",
               match s.parent with
               | None -> Json.Null
               | Some p -> Json.Num (float_of_int p) );
             ("name", Json.Str s.name);
             ("start_ms", Json.Num s.start_ms);
             ("end_ms", Json.Num s.end_ms);
             ("attrs", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) s.attrs));
           ])
       (finished ()))
