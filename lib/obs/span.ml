type id = int

type span = {
  id : id;
  trace : id;
  parent : id option;
  remote : bool;
  pid : int;
  name : string;
  mutable attrs : (string * string) list;
  start_ms : float;
  mutable end_ms : float;
}

let max_retained = 8192

type state = {
  mutable on : bool;
  mutable next_id : int;
  stacks : (int, span list) Hashtbl.t; (* per-fiber, innermost first *)
  mutable closed : span list; (* newest first *)
  mutable closed_count : int;
  mutable dropped_count : int;
}

let st =
  {
    on = false;
    next_id = 1;
    stacks = Hashtbl.create 16;
    closed = [];
    closed_count = 0;
    dropped_count = 0;
  }

let enable () = st.on <- true
let disable () = st.on <- false
let enabled () = st.on

let now_ms () = try Sim.Engine.time () with Effect.Unhandled _ -> 0.0

(* Spans are stacked per fiber: the cooperative scheduler interleaves
   processes at await points, so one global stack would nest a server's
   spans under whatever client happens to be blocked. Pid 0 is
   everything outside the simulation (tests, the CLI prologue). *)
let self_pid () = try Sim.Engine.self_pid () with Effect.Unhandled _ -> 0

let stack_of pid = Option.value (Hashtbl.find_opt st.stacks pid) ~default:[]

let set_stack pid = function
  | [] -> Hashtbl.remove st.stacks pid
  | stack -> Hashtbl.replace st.stacks pid stack

let fresh_id () =
  let id = st.next_id in
  st.next_id <- st.next_id + 1;
  id

let push_span ~trace ~parent ~remote name =
  let pid = self_pid () in
  let stack = stack_of pid in
  let id = fresh_id () in
  let trace = if trace = 0 then id else trace in
  let s =
    {
      id;
      trace;
      parent;
      remote;
      pid;
      name;
      attrs = [];
      start_ms = now_ms ();
      end_ms = nan;
    }
  in
  set_stack pid (s :: stack);
  id

let open_span name =
  if not st.on then 0
  else begin
    let pid = self_pid () in
    match stack_of pid with
    | [] -> push_span ~trace:0 ~parent:None ~remote:false name
    | parent :: _ ->
        push_span ~trace:parent.trace ~parent:(Some parent.id) ~remote:false name
  end

(* A span adopting a parent from another process (arrived in an RPC
   header): same trace, remote parent link. With no wire context the
   span roots a fresh trace in this fiber. *)
let open_remote_span ~trace ~parent name =
  if not st.on then 0
  else if trace = 0 || parent = 0 then open_span name
  else push_span ~trace ~parent:(Some parent) ~remote:true name

let retire s =
  st.closed <- s :: st.closed;
  st.closed_count <- st.closed_count + 1;
  if st.closed_count > max_retained then begin
    (* Drop the oldest retained span. Linear, but only on overflow of
       an already-large buffer. *)
    (match List.rev st.closed with
    | [] -> ()
    | _oldest :: rest -> st.closed <- List.rev rest);
    st.closed_count <- st.closed_count - 1;
    st.dropped_count <- st.dropped_count + 1
  end

(* Deliberately ignores the enabled flag: a span opened while tracing
   was on must still be closed if tracing gets disabled mid-scope.
   Closing a non-innermost span also closes everything opened inside
   it — within the same fiber only. *)
let close_span id =
  if id <> 0 then begin
    let pid = self_pid () in
    let stack = stack_of pid in
    if List.exists (fun s -> s.id = id) stack then begin
      let t = now_ms () in
      let rec pop = function
        | [] -> []
        | s :: rest ->
            s.end_ms <- t;
            retire s;
            if s.id = id then rest else pop rest
      in
      set_stack pid (pop stack)
    end
  end

(* [attrs] is a thunk so the disabled path never builds the attribute
   list: one branch, then straight into [f]. *)
let with_span ?attrs name f =
  if not st.on then f ()
  else begin
    let id = open_span name in
    (match attrs with
    | None -> ()
    | Some mk -> (
        match stack_of (self_pid ()) with
        | s :: _ when s.id = id -> s.attrs <- mk ()
        | _ -> ()));
    Fun.protect ~finally:(fun () -> close_span id) f
  end

let add_attr key value =
  if st.on then
    match stack_of (self_pid ()) with
    | [] -> ()
    | s :: _ -> s.attrs <- s.attrs @ [ (key, value) ]

(* The innermost open span of the calling fiber, as wire-able context.
   This is what an RPC client stamps into its call header. *)
let context () =
  if not st.on then None
  else
    match stack_of (self_pid ()) with
    | [] -> None
    | s :: _ -> Some (s.trace, s.id)

let current_trace () = match context () with None -> 0 | Some (t, _) -> t

let finished () = List.rev st.closed
let open_stack () = List.rev_map (fun s -> (s.id, s.name)) (stack_of (self_pid ()))
let dropped () = st.dropped_count
let duration_ms s = s.end_ms -. s.start_ms

(* Also rewinds the id counter: a cleared tracer replays identically,
   which the same-seed determinism regressions rely on. *)
let clear () =
  Hashtbl.reset st.stacks;
  st.next_id <- 1;
  st.closed <- [];
  st.closed_count <- 0;
  st.dropped_count <- 0

let pp_attrs ppf attrs =
  List.iter (fun (k, v) -> Format.fprintf ppf " %s=%s" k v) attrs

let pp_tree ppf () =
  let spans = finished () in
  let known = List.map (fun s -> s.id) spans in
  let children parent =
    List.filter (fun s -> s.parent = Some parent) spans
  in
  let roots =
    List.filter
      (fun s ->
        match s.parent with None -> true | Some p -> not (List.mem p known))
      spans
  in
  let rec render depth s =
    Format.fprintf ppf "%s%s%s (%.1f ms, pid %d)%a@."
      (String.make (2 * depth) ' ')
      (if s.remote then "~> " else "")
      s.name (duration_ms s) s.pid pp_attrs s.attrs;
    List.iter (render (depth + 1)) (children s.id)
  in
  List.iter (render 0) roots;
  if st.dropped_count > 0 then
    Format.fprintf ppf "(%d older spans dropped)@." st.dropped_count

let to_json () =
  Json.List
    (List.map
       (fun s ->
         Json.Obj
           [
             ("id", Json.Num (float_of_int s.id));
             ("trace", Json.Num (float_of_int s.trace));
             ( "parent",
               match s.parent with
               | None -> Json.Null
               | Some p -> Json.Num (float_of_int p) );
             ("remote", Json.Bool s.remote);
             ("pid", Json.Num (float_of_int s.pid));
             ("name", Json.Str s.name);
             ("start_ms", Json.Num s.start_ms);
             ("end_ms", Json.Num s.end_ms);
             ("attrs", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) s.attrs));
           ])
       (finished ()))
