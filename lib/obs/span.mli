(** Span tracing over the simulation's virtual clock.

    A span is a named interval of virtual time with a parent link and
    free-form [key=value] attributes; a cold [resolve] renders as a
    tree:

    {v
    resolve (name=uw-cs!vanuatu..., query_class=HostAddress)
      find_nsm
        ctx_to_ns
        ns_to_nsm
        nsm_to_binding
        resolve_host
          ctx_to_ns
          ns_to_nsm
          host_to_addr
      nsm_call
    v}

    Spans carry a {e trace id} (the id of the trace's root span) and
    may link to a parent on another simulated process via a {e remote}
    parent link, carried in HRPC call headers — one cold resolve
    through a shared agent renders as a single tree spanning every
    host it touched.

    Tracing is disabled by default and costs one branch per
    {!with_span} when off: attributes are passed as a thunk that is
    never invoked on the disabled path, and {!add_attr} is a single
    flag test.

    The tracer is global, like the metrics registry, but spans nest
    {e per simulated process} (keyed by {!Sim.Engine.self_pid}), so
    interleaved fibers do not corrupt each other's stacks. Outside the
    simulation everything shares pseudo-process 0. *)

type id = int

type span = {
  id : id;
  trace : id;  (** id of the root span of this span's trace *)
  parent : id option;
  remote : bool;  (** parent span lives on another process (wire link) *)
  pid : int;  (** {!Sim.Engine.self_pid} of the opening fiber *)
  name : string;
  mutable attrs : (string * string) list;  (** insertion order *)
  start_ms : float;
  mutable end_ms : float;
}

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool

(** [with_span ?attrs name f] runs [f] inside a fresh span (closed even
    if [f] raises). When tracing is disabled this is just [f ()]; the
    [attrs] thunk is only invoked when tracing is on. *)
val with_span : ?attrs:(unit -> (string * string) list) -> string -> (unit -> 'a) -> 'a

(** Attach an attribute to the calling fiber's innermost open span.
    No-op when disabled or when no span is open. Guard expensive value
    construction with {!enabled}. *)
val add_attr : string -> string -> unit

(** [(trace_id, span_id)] of the calling fiber's innermost open span;
    [None] when disabled or no span is open. This is the context an
    RPC client stamps into its call header. *)
val context : unit -> (id * id) option

(** Trace id of the calling fiber's innermost open span, [0] when
    none. *)
val current_trace : unit -> id

(** {1 Explicit open/close}

    For instrumentation that cannot be expressed as a [with_span]
    scope. Closing a span that is not the innermost one also closes
    every span opened inside it in the same fiber (they end at the
    same instant); closing an unknown or already-closed id is a
    no-op. *)

val open_span : string -> id

(** [open_remote_span ~trace ~parent name] opens a span that joins
    trace [trace] with a {e remote} parent link to span [parent] on
    another process — the server half of cross-hop propagation. With
    [trace = 0] or [parent = 0] it degrades to {!open_span}. *)
val open_remote_span : trace:id -> parent:id -> string -> id

val close_span : id -> unit

(** Completed spans, oldest first. At most [8192] are retained;
    older ones are dropped (see {!dropped}). *)
val finished : unit -> span list

(** Ids and names of the calling fiber's still-open spans, outermost
    first. *)
val open_stack : unit -> (id * string) list

val dropped : unit -> int
val duration_ms : span -> float

(** Forget all recorded and open spans and rewind the id counter (the
    enabled flag is unchanged) — a cleared tracer replays
    byte-identically on the same seed. *)
val clear : unit -> unit

(** Render completed spans as an indented tree with durations, pids
    and attributes; remote-parented spans are marked [~>]. *)
val pp_tree : Format.formatter -> unit -> unit

(** All completed spans as a JSON array (id, trace, parent, remote,
    pid, name, start_ms, end_ms, attrs). *)
val to_json : unit -> Json.t
