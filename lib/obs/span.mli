(** Span tracing over the simulation's virtual clock.

    A span is a named interval of virtual time with a parent link and
    free-form [key=value] attributes; a cold [resolve] renders as a
    tree:

    {v
    resolve (name=uw-cs!vanuatu..., query_class=HostAddress)
      find_nsm
        ctx_to_ns
        ns_to_nsm
        nsm_to_binding
        resolve_host
          ctx_to_ns
          ns_to_nsm
          host_to_addr
      nsm_call
    v}

    Tracing is disabled by default and costs one branch per
    {!with_span} when off. The structured replacement for the
    [Sim.Trace] string ring: exporters render the tree for humans
    ({!pp_tree}) and machines ({!to_json}).

    The tracer is global, like the metrics registry, and assumes the
    single-threaded cooperative execution of the simulator: spans
    opened by an instrumented call nest by dynamic extent. *)

type id = int

type span = {
  id : id;
  parent : id option;
  name : string;
  mutable attrs : (string * string) list;  (** insertion order *)
  start_ms : float;
  mutable end_ms : float;
}

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool

(** [with_span ?attrs name f] runs [f] inside a fresh span (closed even
    if [f] raises). When tracing is disabled this is just [f ()]. *)
val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a

(** Attach an attribute to the innermost open span. No-op when
    disabled or when no span is open. *)
val add_attr : string -> string -> unit

(** {1 Explicit open/close}

    For instrumentation that cannot be expressed as a [with_span]
    scope. Closing a span that is not the innermost one also closes
    every span opened inside it (they end at the same instant);
    closing an unknown or already-closed id is a no-op. *)

val open_span : ?attrs:(string * string) list -> string -> id
val close_span : id -> unit

(** Completed spans, oldest first. At most [8192] are retained;
    older ones are dropped (see {!dropped}). *)
val finished : unit -> span list

(** Ids and names of still-open spans, outermost first. *)
val open_stack : unit -> (id * string) list

val dropped : unit -> int
val duration_ms : span -> float

(** Forget all recorded and open spans (the enabled flag is
    unchanged). *)
val clear : unit -> unit

(** Render completed spans as an indented tree with durations and
    attributes. *)
val pp_tree : Format.formatter -> unit -> unit

(** All completed spans as a JSON array (id, parent, name, start_ms,
    end_ms, attrs). *)
val to_json : unit -> Json.t
