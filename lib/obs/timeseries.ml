type t = {
  window_ms : float;
  max_samples : int;
  q : (float * float) Queue.t; (* (observed_at_ms, value), oldest first *)
}

let now_ms () = try Sim.Engine.time () with Effect.Unhandled _ -> 0.0

let create ?(max_samples = 8192) ~window_ms () =
  if window_ms <= 0.0 then invalid_arg "Timeseries.create: window must be positive";
  if max_samples <= 0 then invalid_arg "Timeseries.create: max_samples must be positive";
  { window_ms; max_samples; q = Queue.create () }

let window_ms t = t.window_ms

(* Drop samples that have slid out of the window ending now. *)
let prune t =
  let horizon = now_ms () -. t.window_ms in
  let rec go () =
    match Queue.peek_opt t.q with
    | Some (at, _) when at < horizon ->
        ignore (Queue.pop t.q);
        go ()
    | _ -> ()
  in
  go ()

let observe t v =
  prune t;
  Queue.push (now_ms (), v) t.q;
  if Queue.length t.q > t.max_samples then ignore (Queue.pop t.q)

let count t =
  prune t;
  Queue.length t.q

let values t =
  prune t;
  List.map snd (List.of_seq (Queue.to_seq t.q))

(* Events per (virtual) second over the window. *)
let rate_per_s t = float_of_int (count t) /. (t.window_ms /. 1000.0)

let percentile t p =
  if p < 0.0 || p > 100.0 then invalid_arg "Timeseries.percentile: p out of range";
  match values t with
  | [] -> invalid_arg "Timeseries.percentile: no samples in window"
  | vs ->
      let sorted = Array.of_list (List.sort compare vs) in
      let n = Array.length sorted in
      let index = p /. 100.0 *. float_of_int (n - 1) in
      let lo_i = int_of_float (floor index) and hi_i = int_of_float (ceil index) in
      if lo_i = hi_i then sorted.(lo_i)
      else begin
        let frac = index -. float_of_int lo_i in
        sorted.(lo_i) +. (frac *. (sorted.(hi_i) -. sorted.(lo_i)))
      end

type summary = {
  n : int;
  rate_per_s : float;
  mean : float;
  p50 : float;
  p99 : float;
  p999 : float;
  max : float;
}

let summary t =
  match values t with
  | [] ->
      { n = 0; rate_per_s = 0.0; mean = 0.0; p50 = 0.0; p99 = 0.0; p999 = 0.0; max = 0.0 }
  | vs ->
      let n = List.length vs in
      {
        n;
        rate_per_s = float_of_int n /. (t.window_ms /. 1000.0);
        mean = List.fold_left ( +. ) 0.0 vs /. float_of_int n;
        p50 = percentile t 50.0;
        p99 = percentile t 99.0;
        p999 = percentile t 99.9;
        max = List.fold_left Float.max neg_infinity vs;
      }

let clear t = Queue.clear t.q
