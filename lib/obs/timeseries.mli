(** Sliding-window time series over the simulation's virtual clock.

    A [Timeseries.t] keeps the samples observed during the last
    [window_ms] of virtual time and answers windowed questions: event
    rate, percentiles, mean, max. Samples that slide out of the window
    are pruned lazily on the next observation or read.

    Unlike {!Sim.Stats} (which accumulates forever), a window answers
    "how are we doing {e now}" — the shape SLO burn rates need. *)

type t

(** [create ~window_ms ()] makes an empty window. [max_samples]
    (default [8192]) bounds memory: beyond it the oldest samples are
    dropped even if still inside the window. *)
val create : ?max_samples:int -> window_ms:float -> unit -> t

val window_ms : t -> float

(** Record a sample at the current virtual time. *)
val observe : t -> float -> unit

(** Samples currently inside the window. *)
val count : t -> int

(** Sample values currently inside the window, oldest first. *)
val values : t -> float list

(** Events per virtual second over the window. *)
val rate_per_s : t -> float

(** Exact percentile (linear interpolation) over the windowed samples.
    Raises [Invalid_argument] when the window is empty or [p] is
    outside [0, 100]. *)
val percentile : t -> float -> float

type summary = {
  n : int;
  rate_per_s : float;
  mean : float;
  p50 : float;
  p99 : float;
  p999 : float;
  max : float;
}

(** Windowed summary; all-zero when the window is empty. *)
val summary : t -> summary

val clear : t -> unit
