type error =
  | Timeout of { elapsed_ms : float }
  | Prog_unavailable
  | Proc_unavailable
  | Garbage_args
  | Refused
  | Protocol_error of string

let pp_error ppf = function
  | Timeout { elapsed_ms } ->
      Format.fprintf ppf "timeout after %.0f ms" elapsed_ms
  | Prog_unavailable -> Format.pp_print_string ppf "program unavailable"
  | Proc_unavailable -> Format.pp_print_string ppf "procedure unavailable"
  | Garbage_args -> Format.pp_print_string ppf "garbage arguments"
  | Refused -> Format.pp_print_string ppf "refused"
  | Protocol_error s -> Format.fprintf ppf "protocol error: %s" s

let error_to_string e = Format.asprintf "%a" pp_error e

exception Rpc_failure of error

let get_ok = function Ok v -> v | Error e -> raise (Rpc_failure e)

let xid_counter = ref 0l

let next_xid () =
  xid_counter := Int32.add !xid_counter 1l;
  !xid_counter

let with_retries ~attempts ~timeout ?(backoff = 2.0) f =
  if attempts < 1 then invalid_arg "Control.with_retries: attempts must be >= 1";
  let rec go n timeout =
    match f ~timeout with
    | Some _ as r -> r
    | None -> if n <= 1 then None else go (n - 1) (timeout *. backoff)
  in
  go attempts timeout

(* --- Retry policy ---------------------------------------------------- *)

type retry_policy = {
  attempts : int;
  attempt_timeout_ms : float;
  timeout_multiplier : float;
  backoff_base_ms : float;
  backoff_multiplier : float;
  backoff_cap_ms : float;
  jitter_ratio : float;
  jitter_seed : int64;
}

let default_policy =
  {
    attempts = 3;
    attempt_timeout_ms = 1000.0;
    timeout_multiplier = 2.0;
    backoff_base_ms = 100.0;
    backoff_multiplier = 2.0;
    backoff_cap_ms = 2000.0;
    jitter_ratio = 0.1;
    jitter_seed = 0x5DEECE66DL;
  }

let validate_policy p =
  if p.attempts < 1 then invalid_arg "Control: policy attempts must be >= 1";
  if p.attempt_timeout_ms <= 0.0 then
    invalid_arg "Control: policy attempt_timeout_ms must be > 0";
  if p.jitter_ratio < 0.0 || p.jitter_ratio >= 1.0 then
    invalid_arg "Control: policy jitter_ratio out of [0,1)"

let attempt_timeout p i =
  if i < 1 then invalid_arg "Control.attempt_timeout: attempt index from 1";
  p.attempt_timeout_ms *. (p.timeout_multiplier ** float_of_int (i - 1))

let backoff_schedule p ~seed =
  validate_policy p;
  let n = max 0 (p.attempts - 1) in
  let rng = Sim.Rng.create ~seed:(Int64.logxor seed p.jitter_seed) in
  let delays = Array.make n 0.0 in
  let prev = ref 0.0 in
  for i = 0 to n - 1 do
    let nominal = p.backoff_base_ms *. (p.backoff_multiplier ** float_of_int i) in
    let jittered =
      if p.jitter_ratio <= 0.0 then nominal
      else
        (* Uniform in nominal * [1 - ratio, 1 + ratio]. *)
        nominal *. (1.0 +. (p.jitter_ratio *. (Sim.Rng.float rng 2.0 -. 1.0)))
    in
    (* Clamping to the previous delay keeps the sequence monotone even
       when a small jitter draw follows a large one; the cap bounds it. *)
    let d = Float.min p.backoff_cap_ms (Float.max !prev jittered) in
    prev := d;
    delays.(i) <- d
  done;
  delays

let retry_budget_ms p =
  validate_policy p;
  let budget = ref 0.0 in
  for i = 1 to p.attempts do
    budget := !budget +. attempt_timeout p i
  done;
  for i = 0 to p.attempts - 2 do
    let nominal = p.backoff_base_ms *. (p.backoff_multiplier ** float_of_int i) in
    budget :=
      !budget +. Float.min p.backoff_cap_ms (nominal *. (1.0 +. p.jitter_ratio))
  done;
  !budget
