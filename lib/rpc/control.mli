(** The control-protocol component shared by the concrete RPC systems:
    transaction ids, call outcomes, and the retransmission policy.

    In the five-component HRPC model this is the piece that "tracks the
    state of a call". Both Sun RPC and Raw exchanges retransmit over
    UDP; Courier relies on its reliable transport. *)

(** Uniform failure vocabulary across RPC systems. *)
type error =
  | Timeout of { elapsed_ms : float }
      (** no reply within the retry budget; [elapsed_ms] is the
          cumulative virtual time spent across every attempt, not the
          last attempt's deadline *)
  | Prog_unavailable         (** no such program/remote interface *)
  | Proc_unavailable         (** no such procedure *)
  | Garbage_args             (** peer could not decode our arguments *)
  | Refused                  (** connection or binding refused *)
  | Protocol_error of string (** malformed or unexpected message *)

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

exception Rpc_failure of error

(** [get_ok r] unwraps or raises {!Rpc_failure}. *)
val get_ok : ('a, error) result -> 'a

(** Fresh transaction id; a single global counter keeps ids unique
    across every client in a simulation, which makes traces easy to
    follow. *)
val next_xid : unit -> int32

(** [with_retries ~attempts ~timeout ~backoff f] calls [f ~timeout]
    up to [attempts] times, doubling the timeout by [backoff] after
    each [None], returning the first [Some]. [attempts >= 1]. *)
val with_retries :
  attempts:int ->
  timeout:float ->
  ?backoff:float ->
  (timeout:float -> 'a option) ->
  'a option

(** {1 Retry policy}

    The full description of a retransmitting client's behaviour: how
    many attempts, how each attempt's deadline escalates, and how long
    to pause between attempts (exponential backoff with seeded jitter,
    so concurrent clients desynchronise deterministically). *)

type retry_policy = {
  attempts : int;               (** total attempts, >= 1 *)
  attempt_timeout_ms : float;   (** first attempt's deadline *)
  timeout_multiplier : float;   (** deadline growth per attempt *)
  backoff_base_ms : float;      (** nominal pause before attempt 2 *)
  backoff_multiplier : float;   (** pause growth per retry *)
  backoff_cap_ms : float;       (** upper bound on any pause *)
  jitter_ratio : float;         (** pause spread, in [0,1) *)
  jitter_seed : int64;          (** mixed into per-call jitter streams *)
}

(** 3 attempts at 1000/2000/4000 ms — the escalation the fixed retry
    always used — plus 100 ms-base doubling backoff capped at 2 s with
    10% jitter. *)
val default_policy : retry_policy

(** Raises [Invalid_argument] on a non-positive attempt count or
    timeout, or a jitter ratio outside [0,1). *)
val validate_policy : retry_policy -> unit

(** Deadline of the [i]-th attempt (1-based). *)
val attempt_timeout : retry_policy -> int -> float

(** [backoff_schedule p ~seed] is the [attempts - 1] pauses between
    attempts. The sequence is monotone non-decreasing, bounded by
    [backoff_cap_ms], and each element stays within [jitter_ratio] of
    its nominal value (before the monotonicity clamp). The same policy
    and seed always produce the same schedule. *)
val backoff_schedule : retry_policy -> seed:int64 -> float array

(** Worst-case virtual time a call governed by [p] can take before
    surfacing [Timeout]: every attempt deadline plus every maximal
    pause. After a fault heals, a client is guaranteed to have issued
    a fresh attempt within this budget. *)
val retry_budget_ms : retry_policy -> float
