open Transport

type proc = { sign : Wire.Idl.signature; impl : Wire.Value.t -> Wire.Value.t }

type server = {
  listener : Tcp.listener;
  service_overhead_ms : float;
  procs : (int32 * int * int, proc) Hashtbl.t;
  programs : (int32 * int, unit) Hashtbl.t;
  mutable running : bool;
  mutable served : int;
}

let create stack ?(port = Address.Well_known.courier) ?(service_overhead_ms = 0.0) () =
  {
    listener = Tcp.listen stack ~port;
    service_overhead_ms;
    procs = Hashtbl.create 16;
    programs = Hashtbl.create 4;
    running = false;
    served = 0;
  }

let addr server = Tcp.listener_addr server.listener
let port server = (addr server).Address.port

let register server ~prog ~vers ~procnum ~sign impl =
  let key = (Int32.of_int prog, vers, procnum) in
  if Hashtbl.mem server.procs key then
    invalid_arg
      (Printf.sprintf "Courier_rpc.register: duplicate procedure %d/%d/%d" prog vers
         procnum);
  Hashtbl.replace server.procs key { sign; impl };
  Hashtbl.replace server.programs (Int32.of_int prog, vers) ()

let handle server (c : Courier_wire.call) : Courier_wire.msg =
  let reject code = Courier_wire.Reject { transaction = c.transaction; code } in
  if not (Hashtbl.mem server.programs (c.prog, c.vers)) then
    reject Courier_wire.No_such_program
  else
    match Hashtbl.find_opt server.procs (c.prog, c.vers, c.procnum) with
    | None -> reject Courier_wire.No_such_procedure
    | Some { sign; impl } -> (
        match Wire.Courier.of_string sign.Wire.Idl.arg c.body with
        | exception _ -> reject Courier_wire.Invalid_arguments
        | arg -> (
            match impl arg with
            | res ->
                Courier_wire.Return
                  {
                    transaction = c.transaction;
                    body = Wire.Courier.to_string sign.Wire.Idl.res res;
                  }
            | exception (Failure msg | Invalid_argument msg) ->
                Courier_wire.Abort
                  {
                    transaction = c.transaction;
                    error = 1;
                    body = Wire.Courier.to_string Wire.Idl.T_string (Wire.Value.Str msg);
                  }))

let serve_connection server conn =
  let rec loop () =
    match Tcp.recv conn with
    | exception Tcp.Connection_closed -> ()
    | payload ->
        (if server.service_overhead_ms > 0.0 then
           Sim.Engine.sleep server.service_overhead_ms);
        (match Courier_wire.decode payload with
        | exception Courier_wire.Bad_message _ -> ()
        | Courier_wire.Return _ | Courier_wire.Abort _ | Courier_wire.Reject _ -> ()
        | Courier_wire.Call c ->
            server.served <- server.served + 1;
            Tcp.send conn (Courier_wire.encode (handle server c)));
        loop ()
  in
  loop ();
  Tcp.close conn

let start server =
  if server.running then invalid_arg "Courier_rpc.start: already running";
  server.running <- true;
  let name = Printf.sprintf "courier:%d" (port server) in
  Sim.Engine.spawn_child ~name (fun () ->
      while server.running do
        let conn = Tcp.accept server.listener in
        Sim.Engine.spawn_child ~name:(name ^ ":conn") (fun () ->
            serve_connection server conn)
      done)

let stop server =
  server.running <- false;
  Tcp.close_listener server.listener

let calls_served server = server.served

type session = { conn : Tcp.conn; mutable next_transaction : int }

let connect stack dst = { conn = Tcp.connect stack dst; next_transaction = 1 }

let call session ~prog ~vers ~procnum ~sign ?(timeout = 2000.0) v =
  Wire.Idl.check ~what:"Courier_rpc.call args" sign.Wire.Idl.arg v;
  let transaction = session.next_transaction land 0xFFFF in
  session.next_transaction <- session.next_transaction + 1;
  let call_msg =
    Courier_wire.(
      encode
        (Call
           {
             transaction;
             prog = Int32.of_int prog;
             vers;
             procnum;
             body = Wire.Courier.to_string sign.Wire.Idl.arg v;
           }))
  in
  Tcp.send session.conn call_msg;
  let t0 = Sim.Engine.time () in
  let timed_out () = Error (Control.Timeout { elapsed_ms = Sim.Engine.time () -. t0 }) in
  let rec wait deadline =
    let remaining = deadline -. Sim.Engine.time () in
    if remaining <= 0.0 then timed_out ()
    else
      match Tcp.recv_timeout session.conn remaining with
      | exception Tcp.Connection_closed -> Error Control.Refused
      | None -> timed_out ()
      | Some payload -> (
          match Courier_wire.decode payload with
          | exception Courier_wire.Bad_message m -> Error (Control.Protocol_error m)
          | Courier_wire.Call _ -> wait deadline
          | Courier_wire.Return r ->
              if r.transaction <> transaction then wait deadline
              else begin
                match Wire.Courier.of_string sign.Wire.Idl.res r.body with
                | exception _ -> Error (Control.Protocol_error "undecodable results")
                | res -> Ok res
              end
          | Courier_wire.Abort a ->
              if a.transaction <> transaction then wait deadline
              else begin
                let detail =
                  match Wire.Courier.of_string Wire.Idl.T_string a.body with
                  | Wire.Value.Str s -> s
                  | _ | (exception _) -> Printf.sprintf "abort %d" a.error
                in
                Error (Control.Protocol_error ("remote abort: " ^ detail))
              end
          | Courier_wire.Reject r ->
              if r.transaction <> transaction then wait deadline
              else Error (Courier_wire.reject_to_error r.code))
  in
  wait (Sim.Engine.time () +. timeout)

let close session = Tcp.close session.conn

let call_once stack ~dst ~prog ~vers ~procnum ~sign ?timeout v =
  let session = connect stack dst in
  let result = call session ~prog ~vers ~procnum ~sign ?timeout v in
  close session;
  result
