open Transport

let serve stack ~port ?(service_overhead_ms = 0.0) ?name handler () =
  let sock = Udp.bind stack ~port in
  let running = ref true in
  let pname =
    match name with Some n -> n | None -> Printf.sprintf "rawrpc:%d" port
  in
  Sim.Engine.spawn_child ~name:pname (fun () ->
      while !running do
        let src, payload = Udp.recv sock in
        if service_overhead_ms > 0.0 then Sim.Engine.sleep service_overhead_ms;
        match handler ~src payload with
        | Some response -> Udp.sendto sock ~dst:src response
        | None -> ()
        | exception (Failure _ | Invalid_argument _) ->
            () (* a crashed handler stays silent; the client times out *)
      done);
  fun () ->
    running := false;
    Udp.close sock

let call stack ~dst ?(timeout = 1000.0) ?(attempts = 3) payload =
  let sock = Udp.bind_any stack in
  let t0 = Sim.Engine.time () in
  let attempt ~timeout =
    Udp.sendto sock ~dst payload;
    match Udp.recv_timeout sock timeout with
    | Some (_, response) -> Some response
    | None -> None
  in
  let result =
    match Control.with_retries ~attempts ~timeout attempt with
    | Some response -> Ok response
    | None -> Error (Control.Timeout { elapsed_ms = Sim.Engine.time () -. t0 })
  in
  Udp.close sock;
  result
