open Transport

type proc = { sign : Wire.Idl.signature; impl : Wire.Value.t -> Wire.Value.t }

type server = {
  sock : Udp.socket;
  service_overhead_ms : float;
  procs : (int32 * int32 * int32, proc) Hashtbl.t;
  programs : (int32 * int32, unit) Hashtbl.t;
  mutable running : bool;
  mutable served : int;
}

let create stack ?port ?(service_overhead_ms = 0.0) () =
  let sock =
    match port with Some p -> Udp.bind stack ~port:p | None -> Udp.bind_any stack
  in
  {
    sock;
    service_overhead_ms;
    procs = Hashtbl.create 16;
    programs = Hashtbl.create 4;
    running = false;
    served = 0;
  }

let port server = (Udp.local_addr server.sock).Address.port
let addr server = Udp.local_addr server.sock

let register server ~prog ~vers ~procnum ~sign impl =
  let key = (Int32.of_int prog, Int32.of_int vers, Int32.of_int procnum) in
  if Hashtbl.mem server.procs key then
    invalid_arg
      (Printf.sprintf "Sunrpc.register: duplicate procedure %d/%d/%d" prog vers procnum);
  Hashtbl.replace server.procs key { sign; impl };
  Hashtbl.replace server.programs (Int32.of_int prog, Int32.of_int vers) ()

let null_signature = Wire.Idl.signature ~arg:Wire.Idl.T_void ~res:Wire.Idl.T_void

let handle server (call : Sunrpc_wire.call) : Sunrpc_wire.reply_body =
  if not (Hashtbl.mem server.programs (call.prog, call.vers)) then
    Sunrpc_wire.Prog_unavail
  else begin
    let proc =
      if call.procnum = 0l then
        (* NULL procedure: implicitly present on every program. *)
        Some { sign = null_signature; impl = (fun _ -> Wire.Value.Void) }
      else Hashtbl.find_opt server.procs (call.prog, call.vers, call.procnum)
    in
    match proc with
    | None -> Sunrpc_wire.Proc_unavail
    | Some { sign; impl } -> (
        match Wire.Xdr.of_string sign.arg call.body with
        | exception _ -> Sunrpc_wire.Garbage_args
        | arg -> (
            match impl arg with
            | res -> Sunrpc_wire.Success (Wire.Xdr.to_string sign.res res)
            | exception (Failure _ | Invalid_argument _) -> Sunrpc_wire.System_err))
  end

let start server =
  if server.running then invalid_arg "Sunrpc.start: already running";
  server.running <- true;
  let name = Printf.sprintf "sunrpc:%d" (port server) in
  Sim.Engine.spawn_child ~name (fun () ->
      while server.running do
        let src, payload = Udp.recv server.sock in
        if server.service_overhead_ms > 0.0 then
          Sim.Engine.sleep server.service_overhead_ms;
        match Sunrpc_wire.decode payload with
        | exception Sunrpc_wire.Bad_message _ -> () (* drop garbage *)
        | Sunrpc_wire.Reply _ -> () (* stray reply: drop *)
        | Sunrpc_wire.Call call ->
            server.served <- server.served + 1;
            let rbody = handle server call in
            let reply = Sunrpc_wire.(Reply { rxid = call.xid; rbody }) in
            Udp.sendto server.sock ~dst:src (Sunrpc_wire.encode reply)
      done)

let stop server = server.running <- false
let calls_served server = server.served

let call stack ~dst ~prog ~vers ~procnum ~sign ?(timeout = 1000.0) ?(attempts = 3) v =
  Wire.Idl.check ~what:"Sunrpc.call args" sign.Wire.Idl.arg v;
  let sock = Udp.bind_any stack in
  let xid = Control.next_xid () in
  let call_msg =
    Sunrpc_wire.(
      encode
        (Call
           {
             xid;
             prog = Int32.of_int prog;
             vers = Int32.of_int vers;
             procnum = Int32.of_int procnum;
             body = Wire.Xdr.to_string sign.Wire.Idl.arg v;
           }))
  in
  let t0 = Sim.Engine.time () in
  let attempt ~timeout =
    Udp.sendto sock ~dst call_msg;
    (* Drain until our xid answers or the window closes; stale replies
       from earlier retransmissions are ignored. *)
    let deadline = Sim.Engine.time () +. timeout in
    let rec wait () =
      let remaining = deadline -. Sim.Engine.time () in
      if remaining <= 0.0 then None
      else
        match Udp.recv_timeout sock remaining with
        | None -> None
        | Some (_, payload) -> (
            match Sunrpc_wire.decode payload with
            | exception Sunrpc_wire.Bad_message _ -> wait ()
            | Sunrpc_wire.Call _ -> wait ()
            | Sunrpc_wire.Reply r -> if r.rxid = xid then Some r.rbody else wait ())
    in
    wait ()
  in
  let result =
    match Control.with_retries ~attempts ~timeout attempt with
    | None -> Error (Control.Timeout { elapsed_ms = Sim.Engine.time () -. t0 })
    | Some rbody -> (
        match Sunrpc_wire.reply_to_result rbody with
        | Error _ as e -> e
        | Ok body -> (
            match Wire.Xdr.of_string sign.Wire.Idl.res body with
            | exception _ -> Error (Control.Protocol_error "undecodable results")
            | res -> Ok res))
  in
  Udp.close sock;
  result
