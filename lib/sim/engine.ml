type time = float

exception Process_failure of string * exn

type event = { at_ : time; seq : int; run : unit -> unit }

let leq a b = a.at_ < b.at_ || (a.at_ = b.at_ && a.seq <= b.seq)

type t = {
  mutable now : time;
  mutable seq : int;
  queue : event Heap.t;
  mutable executed : int;
  mutable failure : (string * exn) option;
  mutable next_pid : int;
}

let create () =
  {
    now = 0.0;
    seq = 0;
    queue = Heap.create ~leq;
    executed = 0;
    failure = None;
    next_pid = 0;
  }

let now t = t.now
let events_executed t = t.executed

let schedule t delay f =
  if delay < 0.0 then invalid_arg "Engine: negative delay";
  t.seq <- t.seq + 1;
  Heap.push t.queue { at_ = t.now +. delay; seq = t.seq; run = f }

(* A write-once cell. Waiters registered while empty are invoked (in
   registration order) at fill time; each waiter schedules its blocked
   process for resumption at the fill instant. *)
type 'a ivar = { mutable value : 'a option; mutable waiters : ('a -> unit) list }

(* A blocked mailbox receiver. [cancelled] supports recv_timeout: a
   timed-out receiver must not swallow a later message. *)
type 'a reader = { mutable cancelled : bool; deliver : 'a -> unit }

type 'a mailbox = { q : 'a Queue.t; readers : 'a reader Queue.t }

type _ Effect.t +=
  | Sleep : time -> unit Effect.t
  | Now : time Effect.t
  | Self_engine : t Effect.t
  | Self_name : string Effect.t
  | Self_pid : int Effect.t
  | Spawn_eff : string option * (unit -> unit) -> unit Effect.t
  | Await : 'a ivar -> 'a Effect.t
  | Await_timeout : 'a ivar * time -> 'a option Effect.t
  | Recv : 'a mailbox -> 'a Effect.t
  | Recv_timeout : 'a mailbox * time -> 'a option Effect.t

let rec pop_reader readers =
  match Queue.take_opt readers with
  | None -> None
  | Some r -> if r.cancelled then pop_reader readers else Some r

(* Pids are allocated in spawn order — a deterministic function of the
   program, so anything keyed by pid (per-fiber span stacks, query
   records) replays identically across runs. *)
let rec spawn t ?(name = "anon") f =
  t.next_pid <- t.next_pid + 1;
  let pid = t.next_pid in
  schedule t 0.0 (fun () -> exec_process t name pid f)

and exec_process : t -> string -> int -> (unit -> unit) -> unit =
 fun t name pid f ->
  let open Effect.Deep in
  match_with f ()
    {
      retc = (fun () -> ());
      exnc =
        (fun e -> if t.failure = None then t.failure <- Some (name, e));
      effc =
        (fun (type c) (eff : c Effect.t) ->
          match eff with
          | Sleep d ->
              Some
                (fun (k : (c, unit) continuation) ->
                  schedule t d (fun () -> continue k ()))
          | Now -> Some (fun k -> continue k t.now)
          | Self_engine -> Some (fun k -> continue k t)
          | Self_name -> Some (fun k -> continue k name)
          | Self_pid -> Some (fun k -> continue k pid)
          | Spawn_eff (n, g) ->
              Some
                (fun k ->
                  spawn t ?name:n g;
                  continue k ())
          | Await iv ->
              Some
                (fun k ->
                  match iv.value with
                  | Some v -> continue k v
                  | None ->
                      let wake v = schedule t 0.0 (fun () -> continue k v) in
                      iv.waiters <- wake :: iv.waiters)
          | Await_timeout (iv, d) ->
              Some
                (fun k ->
                  match iv.value with
                  | Some v -> continue k (Some v)
                  | None ->
                      let decided = ref false in
                      let wake v =
                        if not !decided then begin
                          decided := true;
                          schedule t 0.0 (fun () -> continue k (Some v))
                        end
                      in
                      iv.waiters <- wake :: iv.waiters;
                      schedule t d (fun () ->
                          if not !decided then begin
                            decided := true;
                            continue k None
                          end))
          | Recv mb ->
              Some
                (fun k ->
                  match Queue.take_opt mb.q with
                  | Some v -> continue k v
                  | None ->
                      let deliver v = schedule t 0.0 (fun () -> continue k v) in
                      Queue.push { cancelled = false; deliver } mb.readers)
          | Recv_timeout (mb, d) ->
              Some
                (fun k ->
                  match Queue.take_opt mb.q with
                  | Some v -> continue k (Some v)
                  | None ->
                      let r =
                        {
                          cancelled = false;
                          deliver =
                            (fun v -> schedule t 0.0 (fun () -> continue k (Some v)));
                        }
                      in
                      Queue.push r mb.readers;
                      schedule t d (fun () ->
                          if not r.cancelled then begin
                            r.cancelled <- true;
                            continue k None
                          end))
          | _ -> None);
    }

let at t delay f = schedule t delay f

let check_failure t =
  match t.failure with
  | Some (name, e) ->
      t.failure <- None;
      raise (Process_failure (name, e))
  | None -> ()

let run t =
  let rec loop () =
    if not (Heap.is_empty t.queue) then begin
      let ev = Heap.pop t.queue in
      t.now <- ev.at_;
      t.executed <- t.executed + 1;
      ev.run ();
      check_failure t;
      loop ()
    end
  in
  loop ()

let run_until t deadline =
  let rec loop () =
    if (not (Heap.is_empty t.queue)) && (Heap.peek t.queue).at_ <= deadline then begin
      let ev = Heap.pop t.queue in
      t.now <- ev.at_;
      t.executed <- t.executed + 1;
      ev.run ();
      check_failure t;
      loop ()
    end
  in
  loop ();
  if t.now < deadline then t.now <- deadline

let sleep d = Effect.perform (Sleep d)
let yield () = Effect.perform (Sleep 0.0)
let time () = Effect.perform Now
let spawn_child ?name f = Effect.perform (Spawn_eff (name, f))
let self_engine () = Effect.perform Self_engine
let self_name () = Effect.perform Self_name
let self_pid () = Effect.perform Self_pid

module Ivar = struct
  type 'a t_ = 'a ivar
  type nonrec 'a ivar = 'a t_

  let create () = { value = None; waiters = [] }

  let fill_if_empty iv v =
    match iv.value with
    | Some _ -> false
    | None ->
        iv.value <- Some v;
        let ws = List.rev iv.waiters in
        iv.waiters <- [];
        List.iter (fun w -> w v) ws;
        true

  let fill iv v =
    if not (fill_if_empty iv v) then invalid_arg "Ivar.fill: already full"

  let is_full iv = iv.value <> None
  let peek iv = iv.value
  let read iv = Effect.perform (Await iv)
  let read_timeout iv d = Effect.perform (Await_timeout (iv, d))
end

module Mailbox = struct
  type 'a t_ = 'a mailbox
  type nonrec 'a mailbox = 'a t_

  let create () = { q = Queue.create (); readers = Queue.create () }

  let send mb v =
    match pop_reader mb.readers with
    | Some r ->
        r.cancelled <- true;
        r.deliver v
    | None -> Queue.push v mb.q

  let recv mb = Effect.perform (Recv mb)
  let recv_timeout mb d = Effect.perform (Recv_timeout (mb, d))
  let try_recv mb = Queue.take_opt mb.q
  let length mb = Queue.length mb.q
end
