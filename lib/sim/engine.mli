(** Deterministic discrete-event simulation engine with lightweight
    cooperative processes built on OCaml 5 effect handlers.

    Time is virtual, measured in (simulated) {e milliseconds} — the
    unit of every measurement in the SOSP'87 paper this repository
    reproduces. Processes are plain [unit -> unit] functions that may
    block with {!sleep}, {!Ivar.read} or {!Mailbox.recv}; the engine
    resumes them at the right virtual instant. Execution order is a
    deterministic function of the program alone: simultaneous events
    fire in scheduling order (FIFO per timestamp).

    A process must only be spawned and run from within a single
    engine; the engine is not thread-safe and never needs to be. *)

type t

(** Simulated time in milliseconds since {!create}. *)
type time = float

val create : unit -> t

(** Current virtual time. Outside of [run] this is the time at which
    the last run stopped (initially [0.]). *)
val now : t -> time

(** [spawn t ?name f] schedules process [f] to start at the current
    virtual time. [name] is used in traces and error reports. *)
val spawn : t -> ?name:string -> (unit -> unit) -> unit

(** [at t delay f] schedules plain callback [f] (not a process; it must
    not block) [delay] ms from now. *)
val at : t -> time -> (unit -> unit) -> unit

(** Run until no events remain. Processes blocked forever (e.g. servers
    waiting for requests) do not prevent termination. Exceptions
    escaping a process are re-raised out of [run], wrapped in
    {!Process_failure}. *)
val run : t -> unit

(** [run_until t deadline] runs events with timestamp [<= deadline],
    then sets the clock to [deadline] if it advanced past it. *)
val run_until : t -> time -> unit

(** Number of events executed so far (a determinism fingerprint). *)
val events_executed : t -> int

exception Process_failure of string * exn

(** {1 Operations usable only inside a process} *)

(** Block the calling process for [d] ms ([d >= 0]). *)
val sleep : time -> unit

(** Yield to other processes runnable at the same instant. *)
val yield : unit -> unit

(** Virtual time as seen by the calling process. *)
val time : unit -> time

(** Spawn a sibling process from within a process. *)
val spawn_child : ?name:string -> (unit -> unit) -> unit

(** The engine the calling process runs in. *)
val self_engine : unit -> t

(** Name of the calling process (["anon"] when unnamed). *)
val self_name : unit -> string

(** Process id of the calling process: a deterministic counter
    assigned at spawn (in spawn order, starting at 1), so identities
    keyed by it replay identically across same-seed runs. *)
val self_pid : unit -> int

(** {1 Write-once synchronization variables} *)

module Ivar : sig
  type 'a ivar

  val create : unit -> 'a ivar

  (** [fill iv v] wakes all readers at the current instant.
      Raises [Invalid_argument] if already full. *)
  val fill : 'a ivar -> 'a -> unit

  (** Like [fill] but returns [false] instead of raising when full. *)
  val fill_if_empty : 'a ivar -> 'a -> bool

  val is_full : 'a ivar -> bool
  val peek : 'a ivar -> 'a option

  (** Block until filled. Must be called from within a process. *)
  val read : 'a ivar -> 'a

  (** [read_timeout iv d] is [Some v] if [iv] is filled within [d] ms,
      [None] otherwise. Must be called from within a process. *)
  val read_timeout : 'a ivar -> time -> 'a option
end

(** {1 Unbounded FIFO channels} *)

module Mailbox : sig
  type 'a mailbox

  val create : unit -> 'a mailbox

  (** Never blocks. Wakes one blocked receiver, FIFO. *)
  val send : 'a mailbox -> 'a -> unit

  (** Block until a message is available. In-process only. *)
  val recv : 'a mailbox -> 'a

  (** [recv_timeout mb d] waits at most [d] ms. In-process only. *)
  val recv_timeout : 'a mailbox -> time -> 'a option

  val try_recv : 'a mailbox -> 'a option

  (** Messages currently queued (excluding blocked receivers). *)
  val length : 'a mailbox -> int
end
