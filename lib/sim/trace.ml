type t = {
  capacity : int;
  mutable on : bool;
  buf : (float * string * string) option array;
  mutable next : int; (* next write slot *)
  mutable stored : int;
}

let create ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { capacity; on = false; buf = Array.make capacity None; next = 0; stored = 0 }

let enable t = t.on <- true
let disable t = t.on <- false
let enabled t = t.on

let record t ~time ~tag msg =
  if t.on then begin
    t.buf.(t.next) <- Some (time, tag, msg);
    t.next <- (t.next + 1) mod t.capacity;
    if t.stored < t.capacity then t.stored <- t.stored + 1
  end

let recordf t ~time ~tag fmt =
  (* When disabled, skip formatting entirely: ikfprintf consumes the
     arguments without rendering them, so the only cost is this branch. *)
  if t.on then Format.kasprintf (fun s -> record t ~time ~tag s) fmt
  else Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

let lines t =
  let out = ref [] in
  for i = t.stored - 1 downto 0 do
    let idx = (t.next - 1 - i + (2 * t.capacity)) mod t.capacity in
    match t.buf.(idx) with Some l -> out := l :: !out | None -> ()
  done;
  List.rev !out

let clear t =
  Array.fill t.buf 0 t.capacity None;
  t.next <- 0;
  t.stored <- 0

let pp ppf t =
  List.iter
    (fun (time, tag, msg) -> Format.fprintf ppf "[%8.2f ms] %-12s %s@." time tag msg)
    (lines t)
