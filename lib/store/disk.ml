type cost_model = {
  seek_ms : float;
  per_byte_ms : float;
  fsync_ms : float;
}

(* A Fujitsu-Eagle-class server drive of the paper's era: ~18 ms
   average seek, ~1.8 MB/s sustained transfer (0.00055 ms/byte), and
   8.3 ms of rotational settle to drain the write cache. *)
let default_cost = { seek_ms = 18.0; per_byte_ms = 0.00055; fsync_ms = 8.3 }
let free_cost = { seek_ms = 0.0; per_byte_ms = 0.0; fsync_ms = 0.0 }

type crash_fate = Keep_none | Keep of int

type fault_oracle = now:float -> file:string -> pending:int -> crash_fate

type file = {
  mutable durable : string;
  pending : Buffer.t; (* written, not yet fsynced *)
}

type t = {
  dev_name : string;
  cost : cost_model;
  table : (string, file) Hashtbl.t;
  mutable head_at : string option; (* file under the head, None after sync *)
  mutable oracle : fault_oracle option;
  mutable crash_count : int;
  mutable torn_count : int;
}

let m_writes = Obs.Metrics.counter "store.disk.writes"
let m_reads = Obs.Metrics.counter "store.disk.reads"
let m_fsyncs = Obs.Metrics.counter "store.disk.fsyncs"
let m_bytes_written = Obs.Metrics.counter "store.disk.bytes_written"
let m_bytes_read = Obs.Metrics.counter "store.disk.bytes_read"
let m_seeks = Obs.Metrics.counter "store.disk.seeks"
let m_crashes = Obs.Metrics.counter "store.disk.crashes"
let m_torn = Obs.Metrics.counter "store.disk.torn_writes"
let m_io_ms = Obs.Metrics.histogram "store.disk.io_ms"

let create ?(name = "disk0") ?(cost = default_cost) () =
  {
    dev_name = name;
    cost;
    table = Hashtbl.create 16;
    head_at = None;
    oracle = None;
    crash_count = 0;
    torn_count = 0;
  }

let name t = t.dev_name
let cost t = t.cost
let set_fault_oracle t o = t.oracle <- Some o
let clear_fault_oracle t = t.oracle <- None

(* Charge virtual milliseconds when running inside a simulated
   process; outside one (unit tests of pure logic) the charge is 0. *)
let charge ms =
  if ms > 0.0 then begin
    Obs.Metrics.observe m_io_ms ms;
    try Sim.Engine.sleep ms with Effect.Unhandled _ -> ()
  end

let now_ms () = try Sim.Engine.time () with Effect.Unhandled _ -> 0.0

let get_file t file =
  match Hashtbl.find_opt t.table file with
  | Some f -> f
  | None ->
      let f = { durable = ""; pending = Buffer.create 256 } in
      Hashtbl.replace t.table file f;
      f

(* A seek is charged whenever the head has to move: first op, a
   different file than the last op touched, or right after a sync
   (the head parked over the metadata region). *)
let seek_charge t file =
  if t.head_at <> Some file then begin
    Obs.Metrics.incr m_seeks;
    t.head_at <- Some file;
    t.cost.seek_ms
  end
  else 0.0

let append t ~file data =
  let f = get_file t file in
  let off = String.length f.durable + Buffer.length f.pending in
  let cost =
    seek_charge t file +. (t.cost.per_byte_ms *. float_of_int (String.length data))
  in
  Buffer.add_string f.pending data;
  Obs.Metrics.incr m_writes;
  Obs.Metrics.add m_bytes_written (String.length data);
  charge cost;
  off

let fsync t ~file =
  let f = get_file t file in
  Obs.Metrics.incr m_fsyncs;
  if Buffer.length f.pending > 0 then begin
    f.durable <- f.durable ^ Buffer.contents f.pending;
    Buffer.clear f.pending
  end;
  (* The flush parks the head; the next append seeks back. *)
  t.head_at <- None;
  charge t.cost.fsync_ms

let read t ~file ~off ~len =
  let f = get_file t file in
  let avail = String.length f.durable in
  let off = min off avail in
  let len = max 0 (min len (avail - off)) in
  let data = String.sub f.durable off len in
  Obs.Metrics.incr m_reads;
  Obs.Metrics.add m_bytes_read len;
  charge (seek_charge t file +. (t.cost.per_byte_ms *. float_of_int len));
  data

let durable_contents t ~file =
  match Hashtbl.find_opt t.table file with Some f -> f.durable | None -> ""

let durable_size t ~file = String.length (durable_contents t ~file)

let size t ~file =
  match Hashtbl.find_opt t.table file with
  | Some f -> String.length f.durable + Buffer.length f.pending
  | None -> 0

let exists t ~file =
  match Hashtbl.find_opt t.table file with
  | Some f -> String.length f.durable > 0 || Buffer.length f.pending > 0
  | None -> false

let files t =
  Hashtbl.fold (fun name f acc -> if String.length f.durable > 0 || Buffer.length f.pending > 0 then name :: acc else acc) t.table []
  |> List.sort String.compare

let delete t ~file = Hashtbl.remove t.table file

let crash t =
  t.crash_count <- t.crash_count + 1;
  Obs.Metrics.incr m_crashes;
  let now = now_ms () in
  (* Deterministic order: judge files sorted by name so a seeded
     oracle draws its randomness in a reproducible sequence. *)
  List.iter
    (fun file ->
      let f = Hashtbl.find t.table file in
      let pending = Buffer.length f.pending in
      if pending > 0 then begin
        let fate =
          match t.oracle with
          | Some oracle -> oracle ~now ~file ~pending
          | None -> Keep_none
        in
        (match fate with
        | Keep n when n > 0 ->
            let n = min n pending in
            f.durable <- f.durable ^ String.sub (Buffer.contents f.pending) 0 n;
            t.torn_count <- t.torn_count + 1;
            Obs.Metrics.incr m_torn
        | Keep _ | Keep_none -> ());
        Buffer.clear f.pending
      end)
    (files t);
  t.head_at <- None

let crashes t = t.crash_count
let torn_writes t = t.torn_count

let durable_bytes t =
  Hashtbl.fold (fun _ f acc -> acc + String.length f.durable) t.table 0
