(** A deterministic simulated block device.

    The store subsystem's substrate, playing the role
    {!Transport.Netstack} plays for packets: named append-mostly files
    over an in-memory medium, with every operation charged to the
    virtual clock through a calibrated cost model (seek, per-byte
    transfer, fsync) and counted in the [store.disk.*] metrics.

    Durability is modelled explicitly. {!append} lands bytes in a
    {e pending} (write-cache) region; {!fsync} moves pending bytes to
    the durable medium. {!crash} simulates power loss: pending bytes
    are dropped — except that an installed fault oracle (see
    {!Chaos.Injector.install_disk}) may let a {e prefix} of a file's
    unsynced tail survive, the classic torn write of a crash
    mid-commit. Readers of the post-crash image ({!durable_contents})
    see exactly what an fsck would. *)

type cost_model = {
  seek_ms : float;  (** head movement to a different file / after a sync *)
  per_byte_ms : float;  (** sequential transfer, per byte *)
  fsync_ms : float;  (** write-cache flush (rotational settle) *)
}

(** Calibrated to the paper era's server disk (a Fujitsu-Eagle-class
    drive: ~18 ms average seek, ~1.8 MB/s sustained transfer, 8.3 ms
    rotational settle on flush). *)
val default_cost : cost_model

(** A free device for tests that measure logic, not latency. *)
val free_cost : cost_model

(** The oracle consulted for each file holding unsynced bytes when the
    device crashes: how many of the [pending] bytes reached the
    platter. [Keep_none] is the clean power loss; [Keep n] (a torn
    write) leaves the first [n] pending bytes. *)
type crash_fate = Keep_none | Keep of int

type fault_oracle = now:float -> file:string -> pending:int -> crash_fate

type t

(** [create ?name ?cost ()] — [name] identifies the device in chaos
    plans and traces (default ["disk0"]). *)
val create : ?name:string -> ?cost:cost_model -> unit -> t

val name : t -> string
val cost : t -> cost_model

val set_fault_oracle : t -> fault_oracle -> unit
val clear_fault_oracle : t -> unit

(** {1 I/O (virtual-ms charged)} *)

(** [append t ~file data] — returns the offset the bytes landed at
    (pending until the next {!fsync}). Sequential appends to the same
    file pay transfer only; switching files pays a seek. *)
val append : t -> file:string -> string -> int

(** Flush [file]'s pending bytes to the durable medium. *)
val fsync : t -> file:string -> unit

(** [read t ~file ~off ~len] reads from the durable image (short when
    it ends early). Charges a seek plus transfer. *)
val read : t -> file:string -> off:int -> len:int -> string

(** {1 Inspection (free — the recovery path charges via {!read})} *)

val durable_contents : t -> file:string -> string
val durable_size : t -> file:string -> int

(** Durable + pending size. *)
val size : t -> file:string -> int

val exists : t -> file:string -> bool

(** All files with durable or pending bytes, sorted. *)
val files : t -> string list

val delete : t -> file:string -> unit

(** {1 Failure} *)

(** Power loss: every file's pending bytes are dropped, except what
    the fault oracle tears into the durable image. The device itself
    survives (it is the persistent medium); [crashes]/[torn_writes]
    count events. *)
val crash : t -> unit

val crashes : t -> int
val torn_writes : t -> int

(** Total durable bytes across all files. *)
val durable_bytes : t -> int
