let m_saves = Obs.Metrics.counter "store.snapshot.saves"
let m_loads = Obs.Metrics.counter "store.snapshot.loads"
let m_corrupt = Obs.Metrics.counter "store.snapshot.corrupt_skipped"
let m_bytes = Obs.Metrics.gauge "store.snapshot.bytes"

let snap_file base serial = Printf.sprintf "%s.%010ld.snap" base serial

let frame payload =
  let wr = Wire.Bytebuf.Wr.create ~initial:(String.length payload + 8) () in
  Wire.Bytebuf.Wr.u32 wr (Int32.of_int (String.length payload));
  Wire.Bytebuf.Wr.u32 wr (Wal.crc32 payload);
  Wire.Bytebuf.Wr.bytes wr payload;
  Wire.Bytebuf.Wr.contents wr

let unframe data =
  match
    let rd = Wire.Bytebuf.Rd.of_string data in
    let len = Int32.to_int (Wire.Bytebuf.Rd.u32 rd) in
    if len < 0 || len > Wire.Bytebuf.Rd.remaining rd - 4 then None
    else
      let crc = Wire.Bytebuf.Rd.u32 rd in
      let payload = Wire.Bytebuf.Rd.bytes rd len in
      if Int32.equal (Wal.crc32 payload) crc then Some payload else None
  with
  | v -> v
  | exception Wire.Bytebuf.Truncated -> None

let snaps_on disk ~base =
  let prefix = base ^ "." and suffix = ".snap" in
  List.filter_map
    (fun f ->
      if
        String.length f > String.length prefix + String.length suffix
        && String.sub f 0 (String.length prefix) = prefix
        && String.sub f
             (String.length f - String.length suffix)
             (String.length suffix)
           = suffix
      then
        try
          Some
            ( Int32.of_string
                (String.sub f (String.length prefix)
                   (String.length f - String.length prefix - String.length suffix)),
              f )
        with _ -> None
      else None)
    (Disk.files disk)
  |> List.sort (fun (a, _) (b, _) -> Int32.compare b a)

let save ?(base = "snap") ?(keep = 2) disk ~serial payload =
  let file = snap_file base serial in
  ignore (Disk.append disk ~file (frame payload));
  Disk.fsync disk ~file;
  Obs.Metrics.incr m_saves;
  Obs.Metrics.set m_bytes (float_of_int (Disk.durable_size disk ~file));
  (* Prune superseded snapshots only after the new one is durable. *)
  List.iteri
    (fun i (_, f) -> if i >= keep then Disk.delete disk ~file:f)
    (snaps_on disk ~base)

let load_latest ?(base = "snap") disk =
  let rec go = function
    | [] -> None
    | (serial, file) :: rest -> (
        let data =
          Disk.read disk ~file ~off:0 ~len:(Disk.durable_size disk ~file)
        in
        match unframe data with
        | Some payload ->
            Obs.Metrics.incr m_loads;
            Some (serial, payload)
        | None ->
            (* Torn mid-save: fall back to the previous snapshot. *)
            Obs.Metrics.incr m_corrupt;
            go rest)
  in
  go (snaps_on disk ~base)

let on_disk ?(base = "snap") disk = List.map fst (snaps_on disk ~base)
