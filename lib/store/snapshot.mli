(** Serial-stamped snapshot blobs over a simulated {!Disk}.

    Each {!save} writes one CRC-framed blob to its own file
    ([base.<serial>.snap]) and fsyncs it before pruning superseded
    snapshots, so there is always a whole snapshot on the medium: a
    crash mid-save tears the new file, its CRC fails, and
    {!load_latest} falls back to the previous one. *)

val save : ?base:string -> ?keep:int -> Disk.t -> serial:int32 -> string -> unit

(** The newest snapshot whose frame verifies, with its serial.
    Charges disk reads (this is the recovery path). *)
val load_latest : ?base:string -> Disk.t -> (int32 * string) option

(** Serials of snapshots on the medium, newest first (unverified). *)
val on_disk : ?base:string -> Disk.t -> int32 list
