let frame_magic = 0x57A1

let m_appends = Obs.Metrics.counter "store.wal.appends"
let m_commits = Obs.Metrics.counter "store.wal.group_commits"
let m_replayed = Obs.Metrics.counter "store.wal.replayed_records"
let m_torn = Obs.Metrics.counter "store.wal.torn_records"
let m_compactions = Obs.Metrics.counter "store.wal.compactions"
let m_bytes = Obs.Metrics.gauge "store.wal.bytes"
let m_ratio = Obs.Metrics.gauge "store.wal.compaction_ratio"
let m_append_ms = Obs.Metrics.histogram "store.wal.append_ms"
let m_batch = Obs.Metrics.histogram "store.wal.commit_records"

(* --- CRC-32 (IEEE 802.3), table-driven ------------------------------ *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let i =
        Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xFFl)
      in
      c := Int32.logxor table.(i) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

(* --- framing (Wire.Bytebuf primitives) ------------------------------ *)

let frame payload =
  let wr = Wire.Bytebuf.Wr.create ~initial:(String.length payload + 10) () in
  Wire.Bytebuf.Wr.u16 wr frame_magic;
  Wire.Bytebuf.Wr.u32 wr (Int32.of_int (String.length payload));
  Wire.Bytebuf.Wr.u32 wr (crc32 payload);
  Wire.Bytebuf.Wr.bytes wr payload;
  Wire.Bytebuf.Wr.contents wr

(* One frame off the reader; [None] on a short, unmagiced, or
   CRC-failing frame — the torn tail. *)
let read_frame rd =
  match
    let magic = Wire.Bytebuf.Rd.u16 rd in
    if magic <> frame_magic then None
    else
      let len = Int32.to_int (Wire.Bytebuf.Rd.u32 rd) in
      if len < 0 || len > Wire.Bytebuf.Rd.remaining rd - 4 then None
      else
        let crc = Wire.Bytebuf.Rd.u32 rd in
        let payload = Wire.Bytebuf.Rd.bytes rd len in
        if Int32.equal (crc32 payload) crc then Some payload else None
  with
  | v -> v
  | exception Wire.Bytebuf.Truncated -> None

(* --- the log -------------------------------------------------------- *)

type t = {
  disk : Disk.t;
  base : string;
  group_window_ms : float;
  segment_bytes : int;
  mutable seg_index : int;
  mutable append_count : int;
  mutable commit_count : int;
  mutable total_bytes : int; (* framed bytes across live segments *)
  mutable pending_commit : unit Sim.Engine.Ivar.ivar option;
  mutable batch_size : int;
  mutable dirty : string list; (* files awaiting the group fsync *)
  mutable compacting : unit Sim.Engine.Ivar.ivar option;
  mutable compaction_gen : int;
}

let segment_file base i = Printf.sprintf "%s.%06d.wal" base i

(* Segments of [base] present on [disk]'s durable-or-pending image,
   in log order. *)
let segment_files disk ~base =
  let prefix = base ^ "." and suffix = ".wal" in
  List.filter
    (fun f ->
      String.length f > String.length prefix + String.length suffix
      && String.sub f 0 (String.length prefix) = prefix
      && String.sub f (String.length f - String.length suffix) (String.length suffix)
         = suffix)
    (Disk.files disk)

let seg_number ~base f =
  try
    int_of_string
      (String.sub f (String.length base + 1) (String.length f - String.length base - 5))
  with _ -> 0

let create ?(base = "wal") ?(group_window_ms = 2.0) ?(segment_bytes = 64 * 1024)
    disk =
  (* Resume numbering after any segments already on the device, so a
     writer re-created after recovery appends rather than clobbers. *)
  let seg_index =
    List.fold_left
      (fun acc f -> max acc (seg_number ~base f))
      0 (segment_files disk ~base)
  in
  let total_bytes =
    List.fold_left
      (fun acc f -> acc + Disk.size disk ~file:f)
      0 (segment_files disk ~base)
  in
  {
    disk;
    base;
    group_window_ms;
    segment_bytes;
    seg_index;
    append_count = 0;
    commit_count = 0;
    total_bytes;
    pending_commit = None;
    batch_size = 0;
    dirty = [];
    compacting = None;
    compaction_gen = 0;
  }

let disk t = t.disk
let base t = t.base
let bytes t = t.total_bytes
let segments t = List.length (segment_files t.disk ~base:t.base)
let appends t = t.append_count
let group_commits t = t.commit_count

let current_segment t =
  let file = segment_file t.base t.seg_index in
  if Disk.size t.disk ~file >= t.segment_bytes then begin
    t.seg_index <- t.seg_index + 1;
    segment_file t.base t.seg_index
  end
  else file

let mark_dirty t file =
  if not (List.mem file t.dirty) then t.dirty <- file :: t.dirty

(* Capture the batch before any fsync sleeps: appends racing the flush
   start a fresh batch of their own rather than losing their dirty
   marks to this one's reset. *)
let flush t =
  let dirty = List.rev t.dirty in
  let batch = t.batch_size in
  t.dirty <- [];
  t.batch_size <- 0;
  List.iter (fun file -> Disk.fsync t.disk ~file) dirty;
  t.commit_count <- t.commit_count + 1;
  Obs.Metrics.incr m_commits;
  Obs.Metrics.observe m_batch (float_of_int batch)

let now_ms () = try Sim.Engine.time () with Effect.Unhandled _ -> 0.0

(* Hold the caller at the door while a compaction pass is rewriting
   the log, so no new frame can land in a segment the pass is about to
   delete. Re-checks after waking: another pass may have started. *)
let rec await_compaction t =
  match t.compacting with
  | None -> ()
  | Some iv ->
      Sim.Engine.Ivar.read iv;
      await_compaction t

let append t payload =
  let t0 = now_ms () in
  await_compaction t;
  let file = current_segment t in
  let framed = frame payload in
  let gen = t.compaction_gen in
  ignore (Disk.append t.disk ~file framed);
  t.append_count <- t.append_count + 1;
  Obs.Metrics.incr m_appends;
  if t.compaction_gen <> gen then
    (* A compaction pass ran while this write's time charge slept. The
       frame was buffered before the first yield, so the pass fsynced
       it, replayed it into the rewritten image, and deleted the
       segment it landed in: the record is already durable. Joining a
       group commit now would resurrect the deleted file and count the
       frame's bytes twice. *)
    ()
  else begin
    t.total_bytes <- t.total_bytes + String.length framed;
    Obs.Metrics.set m_bytes (float_of_int t.total_bytes);
    t.batch_size <- t.batch_size + 1;
    mark_dirty t file;
    match t.pending_commit with
    | Some iv ->
        (* Ride the open window: durable when the leader's fsync lands. *)
        Sim.Engine.Ivar.read iv
    | None -> (
        let iv = Sim.Engine.Ivar.create () in
        t.pending_commit <- Some iv;
        (match
           if t.group_window_ms > 0.0 then Sim.Engine.sleep t.group_window_ms
         with
        | () -> ()
        | exception Effect.Unhandled _ -> ());
        t.pending_commit <- None;
        flush t;
        Sim.Engine.Ivar.fill iv ())
  end;
  Obs.Metrics.observe m_append_ms (now_ms () -. t0)

type replay = { records : string list; torn_tail : bool; bytes_scanned : int }

let replay ?(base = "wal") disk =
  let files =
    List.sort
      (fun a b -> compare (seg_number ~base a) (seg_number ~base b))
      (segment_files disk ~base)
  in
  let records = ref [] in
  let torn = ref false in
  let scanned = ref 0 in
  (try
     List.iter
       (fun file ->
         let len = Disk.durable_size disk ~file in
         let data = Disk.read disk ~file ~off:0 ~len in
         scanned := !scanned + String.length data;
         let rd = Wire.Bytebuf.Rd.of_string data in
         while not (Wire.Bytebuf.Rd.at_end rd) do
           match read_frame rd with
           | Some payload ->
               records := payload :: !records;
               Obs.Metrics.incr m_replayed
           | None ->
               (* A torn or corrupt frame: everything beyond it is
                  unordered garbage; stop the whole replay here. *)
               torn := true;
               Obs.Metrics.incr m_torn;
               raise Exit
         done)
       files
   with Exit -> ());
  { records = List.rev !records; torn_tail = !torn; bytes_scanned = !scanned }

let compact t ~coalesce =
  (* One pass at a time; two passes deleting each other's segments
     would be as destructive as the append race the guard prevents. *)
  await_compaction t;
  (* Everything up to the guard below runs before the first yield
     (Disk only charges time on I/O calls), so this snapshot of the
     log is atomic: any frame a concurrent appender has started
     writing is already in some old segment's pending buffer, and no
     new frame can land once the guard is up. *)
  let before = t.total_bytes in
  let old_files =
    List.sort
      (fun a b -> compare (seg_number ~base:t.base a) (seg_number ~base:t.base b))
      (segment_files t.disk ~base:t.base)
  in
  t.dirty <- [];
  (* The rewritten log starts on a fresh segment number so readers can
     never confuse old and new images — bumped before the first yield
     so even a frame that slipped past the guard could only land on a
     segment this pass never deletes. *)
  t.seg_index <- t.seg_index + 1;
  let guard = Sim.Engine.Ivar.create () in
  t.compacting <- Some guard;
  t.compaction_gen <- t.compaction_gen + 1;
  Fun.protect
    ~finally:(fun () ->
      t.compacting <- None;
      try Sim.Engine.Ivar.fill guard () with Effect.Unhandled _ -> ())
    (fun () ->
      (* Make every old segment durable — not just the dirty list: an
         appender sleeping in its write's time charge has buffered its
         frame but not yet marked the file dirty. Replay then sees the
         complete log, pending tail included. *)
      List.iter (fun file -> Disk.fsync t.disk ~file) old_files;
      let { records; _ } = replay ~base:t.base t.disk in
      let kept = coalesce records in
      t.total_bytes <- 0;
      let written = ref [] in
      List.iter
        (fun payload ->
          let file = current_segment t in
          let framed = frame payload in
          ignore (Disk.append t.disk ~file framed);
          t.total_bytes <- t.total_bytes + String.length framed;
          if not (List.mem file !written) then written := file :: !written)
        kept;
      List.iter (fun file -> Disk.fsync t.disk ~file) (List.rev !written);
      (* Only once the new image is durable do the old segments go. *)
      List.iter (fun file -> Disk.delete t.disk ~file) old_files;
      Obs.Metrics.set m_bytes (float_of_int t.total_bytes);
      Obs.Metrics.incr m_compactions;
      let ratio =
        if t.total_bytes = 0 then if before = 0 then 1.0 else float_of_int before
        else float_of_int before /. float_of_int t.total_bytes
      in
      Obs.Metrics.set m_ratio ratio;
      ratio)
