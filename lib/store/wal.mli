(** Append-only write-ahead log over a simulated {!Disk}.

    Records are opaque byte strings, CRC-framed with the repository's
    {!Wire.Bytebuf} primitives: a magic halfword, a 32-bit payload
    length, a CRC-32 of the payload, then the payload. The frame is
    what makes crash recovery decidable — a torn tail (a crash
    mid-commit, see {!Disk.crash}) fails its CRC and replay stops at
    the last whole record.

    Durability is group-committed: {!append} writes the frame, then
    rides the next flush. The first appender in a window becomes the
    leader — it sleeps [group_window_ms] of virtual time, fsyncs once,
    and wakes every rider. Concurrent appenders therefore share one
    fsync ([store.wal.group_commits] vs [store.wal.appends]); an
    append returns only once its record is durable.

    The log is segmented ([segment_bytes] per file); {!compact}
    rewrites the whole log through a caller-supplied coalescing
    function, which is also how a snapshot prunes the records it
    covers. *)

type t

val create :
  ?base:string ->
  ?group_window_ms:float ->
  ?segment_bytes:int ->
  Disk.t ->
  t

(** Durable on return (blocks on the group commit when called inside a
    simulated process; syncs immediately outside one). *)
val append : t -> string -> unit

(** Decoded from the durable image, oldest first, ending at the first
    torn or corrupt frame. *)
type replay = {
  records : string list;
  torn_tail : bool;  (** replay stopped at a bad frame *)
  bytes_scanned : int;
}

(** Static: read a log's durable image back (e.g. after a crash,
    before re-creating the writer). Charges disk reads. *)
val replay : ?base:string -> Disk.t -> replay

(** [compact t ~coalesce] — rewrites the log as [coalesce records]
    (oldest first in, oldest first out), fsyncs, deletes the old
    segments, and returns the bytes-before / bytes-after ratio (1.0
    when the log was empty). Also the pruning primitive: a filtering
    [coalesce] drops records a snapshot made redundant.

    Safe against concurrent {!append}s: the pass first makes every
    pending byte durable so replay sees the complete log, and holds
    new appends until the rewritten image is durable — a record acked
    by {!append} is never lost to a racing compaction (though
    [coalesce] may fold or drop it like any other committed record).
    Concurrent [compact] calls serialize. *)
val compact : t -> coalesce:(string list -> string list) -> float

val bytes : t -> int
val segments : t -> int
val appends : t -> int
val group_commits : t -> int
val disk : t -> Disk.t
val base : t -> string

(** CRC-32 (IEEE), exposed for tests and snapshot framing. *)
val crc32 : string -> int32
