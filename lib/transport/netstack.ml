type udp_handler = src:Address.t -> string -> unit

let ephemeral_base = 32768

(* Process-wide mirrors of the per-netstack counters, so one registry
   dump covers every simulated network in the process. *)
let m_sent = Obs.Metrics.counter "transport.netstack.packets_sent"
let m_dropped = Obs.Metrics.counter "transport.netstack.packets_dropped"
let m_received = Obs.Metrics.counter "transport.netstack.packets_received"
let m_bytes = Obs.Metrics.counter "transport.netstack.bytes_sent"

type tcp_event = Tcp_data of string | Tcp_fin

type conn_half = { deliver : tcp_event -> unit }

type syn_reply = Accepted of conn_half | Refused

type tcp_listener_hook = {
  on_syn : src:Address.t -> client:conn_half -> reply:(syn_reply -> unit) -> unit;
}

type fault_verdict =
  | Fault_pass
  | Fault_drop
  | Fault_deliver of { extra_delay_ms : float; payload : string option }

type fault_oracle =
  now:float ->
  src:Sim.Topology.host ->
  dst:Sim.Topology.host ->
  payload:string option ->
  fault_verdict

type t = {
  engine : Sim.Engine.t;
  topology : Sim.Topology.t;
  drop_probability : float;
  rng : Sim.Rng.t;
  mutable next_ip : int32;
  stacks : (int32, stack) Hashtbl.t;
  by_host : (int, stack) Hashtbl.t;
  mutable oracle : fault_oracle option;
  mutable sent : int;
  mutable dropped : int;
  mutable received : int;
  mutable bytes : int;
}

and stack = {
  stack_order : int;
  net_ : t;
  stack_host : Sim.Topology.host;
  stack_ip : Address.ip;
  udp_ports : (int, udp_handler) Hashtbl.t;
  tcp_ports : (int, tcp_listener_hook) Hashtbl.t;
  mutable next_udp_ephemeral : int;
  mutable next_tcp_ephemeral : int;
}

let create ?(drop_probability = 0.0) ?(seed = 0x9E3779B9L) engine topology =
  if drop_probability < 0.0 || drop_probability >= 1.0 then
    invalid_arg "Netstack.create: drop probability out of [0,1)";
  {
    engine;
    topology;
    drop_probability;
    rng = Sim.Rng.create ~seed;
    next_ip = 0x0A000001l (* 10.0.0.1 *);
    stacks = Hashtbl.create 16;
    by_host = Hashtbl.create 16;
    oracle = None;
    sent = 0;
    dropped = 0;
    received = 0;
    bytes = 0;
  }

let engine t = t.engine
let topology t = t.topology

let attach t host =
  if Hashtbl.mem t.by_host host.Sim.Topology.id then
    invalid_arg "Netstack.attach: host already attached";
  let stack =
    {
      stack_order = Hashtbl.length t.by_host;
      net_ = t;
      stack_host = host;
      stack_ip = t.next_ip;
      udp_ports = Hashtbl.create 8;
      tcp_ports = Hashtbl.create 8;
      next_udp_ephemeral = ephemeral_base;
      next_tcp_ephemeral = ephemeral_base;
    }
  in
  t.next_ip <- Int32.add t.next_ip 1l;
  Hashtbl.replace t.stacks stack.stack_ip stack;
  Hashtbl.replace t.by_host host.Sim.Topology.id stack;
  stack

let all_stacks t =
  Hashtbl.fold (fun _ s acc -> s :: acc) t.by_host []
  |> List.sort (fun a b -> Int.compare a.stack_order b.stack_order)

let ip s = s.stack_ip
let host s = s.stack_host
let net s = s.net_
let find_stack t ip = Hashtbl.find_opt t.stacks ip
let stack_of_host t h = Hashtbl.find_opt t.by_host h.Sim.Topology.id

let count_sent t ~bytes =
  t.sent <- t.sent + 1;
  t.bytes <- t.bytes + bytes;
  Obs.Metrics.incr m_sent;
  Obs.Metrics.add m_bytes bytes

(* Delivery is counted when the packet's arrival event fires, so tests
   can cross-check [sent = received + dropped] once the engine is
   quiescent. *)
let deliver t k () =
  t.received <- t.received + 1;
  Obs.Metrics.incr m_received;
  k ()

let set_fault_oracle t oracle = t.oracle <- Some oracle
let clear_fault_oracle t = t.oracle <- None

let count_dropped t =
  t.dropped <- t.dropped + 1;
  Obs.Metrics.incr m_dropped

let random_drop t ~src ~dst =
  let crosses_wire = not (Sim.Topology.same_host src.stack_host dst.stack_host) in
  crosses_wire && t.drop_probability > 0.0
  && Sim.Rng.float t.rng 1.0 < t.drop_probability

let consult t ~src ~dst ~payload =
  match t.oracle with
  | None -> Fault_pass
  | Some oracle ->
      oracle ~now:(Sim.Engine.now t.engine) ~src:src.stack_host
        ~dst:dst.stack_host ~payload

let transit t ~src ~dst ~bytes k =
  count_sent t ~bytes;
  if random_drop t ~src ~dst then count_dropped t
  else
    match consult t ~src ~dst ~payload:None with
    | Fault_drop -> count_dropped t
    | (Fault_pass | Fault_deliver _) as verdict ->
        let extra =
          match verdict with
          | Fault_deliver { extra_delay_ms; _ } -> extra_delay_ms
          | _ -> 0.0
        in
        let delay =
          Sim.Topology.delay t.topology ~src:src.stack_host ~dst:dst.stack_host
            ~bytes
        in
        Sim.Engine.at t.engine (delay +. extra) (deliver t k)

let transit_msg t ~src ~dst ~bytes payload k =
  count_sent t ~bytes;
  if random_drop t ~src ~dst then count_dropped t
  else
    match consult t ~src ~dst ~payload:(Some payload) with
    | Fault_drop -> count_dropped t
    | (Fault_pass | Fault_deliver _) as verdict ->
        let extra, payload =
          match verdict with
          | Fault_deliver { extra_delay_ms; payload = p } ->
              (extra_delay_ms, Option.value p ~default:payload)
          | _ -> (0.0, payload)
        in
        let delay =
          Sim.Topology.delay t.topology ~src:src.stack_host ~dst:dst.stack_host
            ~bytes
        in
        Sim.Engine.at t.engine (delay +. extra) (deliver t (fun () -> k payload))

type channel = { mutable last_arrival : float }

let channel () = { last_arrival = 0.0 }

let transit_ordered t ~src ~dst ~bytes ch k =
  count_sent t ~bytes;
  (* The oracle sees ordered (TCP) segments without their payload:
     partitions and delays apply, corruption does not — the reliable
     transport's checksums would have discarded a damaged segment. *)
  match consult t ~src ~dst ~payload:None with
  | Fault_drop -> count_dropped t
  | (Fault_pass | Fault_deliver _) as verdict ->
      let extra =
        match verdict with
        | Fault_deliver { extra_delay_ms; _ } -> extra_delay_ms
        | _ -> 0.0
      in
      let delay =
        Sim.Topology.delay t.topology ~src:src.stack_host ~dst:dst.stack_host
          ~bytes
      in
      let now = Sim.Engine.now t.engine in
      let arrival = Float.max (now +. delay +. extra) ch.last_arrival in
      ch.last_arrival <- arrival;
      Sim.Engine.at t.engine (arrival -. now) (deliver t k)

let packets_sent t = t.sent
let packets_dropped t = t.dropped
let packets_received t = t.received
let bytes_sent t = t.bytes

let register_port table what port v =
  if Hashtbl.mem table port then
    invalid_arg (Printf.sprintf "Netstack: %s port %d already bound" what port);
  Hashtbl.replace table port v

let udp_register s ~port h = register_port s.udp_ports "UDP" port h
let udp_unregister s ~port = Hashtbl.remove s.udp_ports port
let udp_handler s ~port = Hashtbl.find_opt s.udp_ports port
let tcp_register s ~port h = register_port s.tcp_ports "TCP" port h
let tcp_unregister s ~port = Hashtbl.remove s.tcp_ports port
let tcp_hook s ~port = Hashtbl.find_opt s.tcp_ports port

let alloc_from table next bump =
  (* Cyclic scan: closed sockets release their ports for reuse. *)
  let span = 65536 - ephemeral_base in
  let normalize p = if p > 65535 then ephemeral_base + ((p - ephemeral_base) mod span) else p in
  let rec find p tried =
    if tried > span then invalid_arg "Netstack: ephemeral ports exhausted"
    else begin
      let p = normalize p in
      if Hashtbl.mem table p then find (p + 1) (tried + 1)
      else begin
        bump (normalize (p + 1));
        p
      end
    end
  in
  find next 0

let alloc_udp_port s =
  alloc_from s.udp_ports s.next_udp_ephemeral (fun n -> s.next_udp_ephemeral <- n)

let alloc_tcp_port s =
  alloc_from s.tcp_ports s.next_tcp_ephemeral (fun n -> s.next_tcp_ephemeral <- n)
