(** The simulated internet: one [t] per simulation, one {!stack} per
    attached host.

    A stack owns its host's IP and its UDP/TCP port tables; the [t]
    owns the (optional) packet-loss model. Transit of a message
    between stacks costs {!Sim.Topology.delay} of virtual time;
    delivery is a scheduled engine event, so concurrent traffic
    interleaves deterministically. *)

type t
type stack

val create :
  ?drop_probability:float -> ?seed:int64 -> Sim.Engine.t -> Sim.Topology.t -> t

val engine : t -> Sim.Engine.t
val topology : t -> Sim.Topology.t

(** [attach t host] creates the host's stack and assigns the next IP
    (starting at 10.0.0.1). A host can attach at most once. *)
val attach : t -> Sim.Topology.host -> stack

val ip : stack -> Address.ip
val host : stack -> Sim.Topology.host
val net : stack -> t
val find_stack : t -> Address.ip -> stack option
val stack_of_host : t -> Sim.Topology.host -> stack option

(** Every attached stack, in attachment order (used by broadcast). *)
val all_stacks : t -> stack list

(** {1 Fault injection}

    A simulation may install one {e fault oracle}: a pure function the
    netstack consults on every transit with the virtual time, the
    endpoint hosts, and (for datagram sends) the payload. The oracle
    decides whether the packet passes untouched, is dropped (counted in
    [packets_dropped], so the send/receive invariant survives), or is
    delivered late and/or with a rewritten payload. [lib/chaos] builds
    oracles from timed fault plans; the netstack itself stays
    policy-free. *)

type fault_verdict =
  | Fault_pass
  | Fault_drop
  | Fault_deliver of { extra_delay_ms : float; payload : string option }
      (** deliver after the normal delay plus [extra_delay_ms], with
          [payload] substituted when provided (datagram transits only) *)

type fault_oracle =
  now:float ->
  src:Sim.Topology.host ->
  dst:Sim.Topology.host ->
  payload:string option ->
  fault_verdict

val set_fault_oracle : t -> fault_oracle -> unit
val clear_fault_oracle : t -> unit

(** [transit t ~src ~dst ~bytes k] schedules [k] after the simulated
    network delay from [src] to [dst]. When the hop leaves the host,
    [k] is dropped (never run) with the configured drop probability. *)
val transit : t -> src:stack -> dst:stack -> bytes:int -> (unit -> unit) -> unit

(** Like {!transit} for a datagram whose payload the fault oracle may
    corrupt: [k] receives the payload that actually arrives. *)
val transit_msg :
  t -> src:stack -> dst:stack -> bytes:int -> string -> (string -> unit) -> unit

(** A FIFO channel clock for reliable, ordered transit (one per
    direction of a TCP connection). *)
type channel

val channel : unit -> channel

(** Like {!transit} but never drops (TCP retransmission is folded into
    the delay model) and preserves order within the [channel]: an event
    never overtakes an earlier event on the same channel even when it
    is smaller. *)
val transit_ordered :
  t -> src:stack -> dst:stack -> bytes:int -> channel -> (unit -> unit) -> unit

(** {1 Counters for observability}

    Mirrored process-wide into the {!Obs.Metrics} registry under
    [transport.netstack.*]. Once the engine is quiescent,
    [packets_sent = packets_received + packets_dropped]. *)

val packets_sent : t -> int
val packets_dropped : t -> int

(** Packets whose arrival event has fired (delivery, not send). *)
val packets_received : t -> int

val bytes_sent : t -> int

(** {1 Protocol plumbing}

    Used by the {!Udp} and {!Tcp} modules; applications should not
    call these directly. Registration raises [Invalid_argument] when
    the port is taken. *)

type udp_handler = src:Address.t -> string -> unit

(** An in-order, reliable event stream — one direction of an
    established TCP connection. *)
type tcp_event = Tcp_data of string | Tcp_fin

type conn_half = { deliver : tcp_event -> unit }

type syn_reply = Accepted of conn_half | Refused

(** What a listening port does with an arriving connection request:
    [client] is where to deliver server->client events; call [reply]
    exactly once. *)
type tcp_listener_hook = {
  on_syn : src:Address.t -> client:conn_half -> reply:(syn_reply -> unit) -> unit;
}

val udp_register : stack -> port:int -> udp_handler -> unit
val udp_unregister : stack -> port:int -> unit
val udp_handler : stack -> port:int -> udp_handler option
val tcp_register : stack -> port:int -> tcp_listener_hook -> unit
val tcp_unregister : stack -> port:int -> unit
val tcp_hook : stack -> port:int -> tcp_listener_hook option

(** Ephemeral port allocation (from 32768), per stack per protocol. *)
val alloc_udp_port : stack -> int

val alloc_tcp_port : stack -> int
