exception Connection_refused of Address.t
exception Connection_closed

(* Handshake and per-message header cost, in bytes, added to every
   transit (IP + TCP headers). *)
let header_bytes = 40

type conn = {
  stack : Netstack.stack;
  local : Address.t;
  peer : Address.t;
  inbox : Netstack.tcp_event Sim.Engine.Mailbox.mailbox;
  out_channel : Netstack.channel;
  mutable out_half : Netstack.conn_half;
  mutable dst_stack : Netstack.stack;
  mutable send_open : bool; (* we have not sent FIN *)
  mutable recv_open : bool; (* we have not drained the peer's FIN *)
}

type listener = {
  l_stack : Netstack.stack;
  l_port : int;
  backlog : conn Sim.Engine.Mailbox.mailbox;
  mutable listening : bool;
}

let half_of_inbox inbox =
  { Netstack.deliver = (fun ev -> Sim.Engine.Mailbox.send inbox ev) }

let listen stack ~port =
  let backlog = Sim.Engine.Mailbox.create () in
  let listener = { l_stack = stack; l_port = port; backlog; listening = true } in
  let on_syn ~src ~client ~reply =
    if not listener.listening then reply Netstack.Refused
    else begin
      let net = Netstack.net stack in
      match Netstack.find_stack net src.Address.ip with
      | None -> reply Netstack.Refused
      | Some client_stack ->
          let inbox = Sim.Engine.Mailbox.create () in
          let conn =
            {
              stack;
              local = Address.make (Netstack.ip stack) port;
              peer = src;
              inbox;
              out_channel = Netstack.channel ();
              out_half = client;
              dst_stack = client_stack;
              send_open = true;
              recv_open = true;
            }
          in
          Sim.Engine.Mailbox.send backlog conn;
          reply (Netstack.Accepted (half_of_inbox inbox))
    end
  in
  Netstack.tcp_register stack ~port { on_syn };
  listener

let listener_addr l = Address.make (Netstack.ip l.l_stack) l.l_port
let accept l = Sim.Engine.Mailbox.recv l.backlog

let close_listener l =
  if l.listening then begin
    l.listening <- false;
    Netstack.tcp_unregister l.l_stack ~port:l.l_port
  end

(* A SYN or SYN-ACK lost to a partition must not hang the caller
   forever: the handshake is bounded, and a silent peer looks exactly
   like a refusing one. *)
let default_connect_timeout_ms = 30_000.0

let connect ?(timeout_ms = default_connect_timeout_ms) stack dst =
  let net = Netstack.net stack in
  let local_port = Netstack.alloc_tcp_port stack in
  let local = Address.make (Netstack.ip stack) local_port in
  match Netstack.find_stack net dst.Address.ip with
  | None -> raise (Connection_refused dst)
  | Some dst_stack ->
      let inbox = Sim.Engine.Mailbox.create () in
      let result = Sim.Engine.Ivar.create () in
      (* SYN out... *)
      Netstack.transit_ordered net ~src:stack ~dst:dst_stack ~bytes:header_bytes
        (Netstack.channel ())
        (fun () ->
          let reply r =
            (* ...SYN-ACK (or RST) back. *)
            Netstack.transit_ordered net ~src:dst_stack ~dst:stack
              ~bytes:header_bytes (Netstack.channel ())
              (fun () -> Sim.Engine.Ivar.fill result r)
          in
          match Netstack.tcp_hook dst_stack ~port:dst.Address.port with
          | Some hook -> hook.on_syn ~src:local ~client:(half_of_inbox inbox) ~reply
          | None -> reply Netstack.Refused);
      (match Sim.Engine.Ivar.read_timeout result timeout_ms with
      | None | Some Netstack.Refused -> raise (Connection_refused dst)
      | Some (Netstack.Accepted server_half) ->
          {
            stack;
            local;
            peer = dst;
            inbox;
            out_channel = Netstack.channel ();
            out_half = server_half;
            dst_stack;
            send_open = true;
            recv_open = true;
          })

let local_addr c = c.local
let peer_addr c = c.peer

let send c payload =
  if not c.send_open then raise Connection_closed;
  let net = Netstack.net c.stack in
  let half = c.out_half in
  Netstack.transit_ordered net ~src:c.stack ~dst:c.dst_stack
    ~bytes:(String.length payload + header_bytes)
    c.out_channel
    (fun () -> half.Netstack.deliver (Netstack.Tcp_data payload))

let rec recv c =
  if not c.recv_open then raise Connection_closed;
  match Sim.Engine.Mailbox.recv c.inbox with
  | Netstack.Tcp_data s -> s
  | Netstack.Tcp_fin ->
      c.recv_open <- false;
      recv c

let recv_timeout c d =
  if not c.recv_open then raise Connection_closed;
  match Sim.Engine.Mailbox.recv_timeout c.inbox d with
  | None -> None
  | Some (Netstack.Tcp_data s) -> Some s
  | Some Netstack.Tcp_fin ->
      c.recv_open <- false;
      raise Connection_closed

let close c =
  if c.send_open then begin
    c.send_open <- false;
    let net = Netstack.net c.stack in
    let half = c.out_half in
    Netstack.transit_ordered net ~src:c.stack ~dst:c.dst_stack ~bytes:header_bytes
      c.out_channel
      (fun () -> half.Netstack.deliver Netstack.Tcp_fin)
  end
