(** Connection-oriented, reliable, ordered message streams — the
    transport under Courier RPC and under TCP message passing.

    The simulator models TCP at the message level: a connection is a
    pair of reliable FIFO channels with a one-round-trip handshake.
    Message boundaries are preserved (real Courier and Sun-RPC-over-TCP
    both run record-marking on top of the byte stream; we model the
    records directly). *)

exception Connection_refused of Address.t
exception Connection_closed

type listener
type conn

(** Claim a listening port. Raises [Invalid_argument] if taken. *)
val listen : Netstack.stack -> port:int -> listener

val listener_addr : listener -> Address.t

(** Block until a client connects. In-process only. *)
val accept : listener -> conn

(** Stop listening; established connections are unaffected. *)
val close_listener : listener -> unit

(** Block through the SYN/ACK round trip. In-process only.
    Raises {!Connection_refused} when nothing listens at [dst], or when
    the handshake does not complete within [timeout_ms] (default 30 s —
    a partitioned peer must not hang the caller forever). *)
val connect : ?timeout_ms:float -> Netstack.stack -> Address.t -> conn

val local_addr : conn -> Address.t
val peer_addr : conn -> Address.t

(** Queue one message for in-order delivery. Never blocks.
    Raises {!Connection_closed} after a local [close]. *)
val send : conn -> string -> unit

(** Block until a message arrives. Raises {!Connection_closed} when the
    peer has closed and all data has been drained. In-process only. *)
val recv : conn -> string

(** [recv_timeout conn d] is [None] on timeout. In-process only. *)
val recv_timeout : conn -> float -> string option

(** Half-close: the peer's [recv] raises after draining. Idempotent. *)
val close : conn -> unit
