type socket = {
  stack : Netstack.stack;
  port : int;
  inbox : (Address.t * string) Sim.Engine.Mailbox.mailbox;
  mutable closed : bool;
}

let install stack port =
  let inbox = Sim.Engine.Mailbox.create () in
  let handler ~src payload = Sim.Engine.Mailbox.send inbox (src, payload) in
  Netstack.udp_register stack ~port handler;
  { stack; port; inbox; closed = false }

let bind stack ~port = install stack port
let bind_any stack = install stack (Netstack.alloc_udp_port stack)
let local_addr sock = Address.make (Netstack.ip sock.stack) sock.port

let check_open sock =
  if sock.closed then invalid_arg "Udp: socket is closed"

let sendto sock ~dst payload =
  check_open sock;
  let net = Netstack.net sock.stack in
  match Netstack.find_stack net dst.Address.ip with
  | None -> () (* unreachable destination: datagram vanishes *)
  | Some dst_stack ->
      let src_addr = local_addr sock in
      Netstack.transit_msg net ~src:sock.stack ~dst:dst_stack
        ~bytes:(String.length payload + 28 (* IP + UDP headers *))
        payload
        (fun payload ->
          match Netstack.udp_handler dst_stack ~port:dst.Address.port with
          | Some h -> h ~src:src_addr payload
          | None -> () (* port not bound on arrival *))

let broadcast sock ~port payload =
  check_open sock;
  let net = Netstack.net sock.stack in
  let src_addr = local_addr sock in
  List.iter
    (fun dst_stack ->
      Netstack.transit_msg net ~src:sock.stack ~dst:dst_stack
        ~bytes:(String.length payload + 28)
        payload
        (fun payload ->
          match Netstack.udp_handler dst_stack ~port with
          | Some h -> h ~src:src_addr payload
          | None -> ()))
    (Netstack.all_stacks net)

let recv sock =
  check_open sock;
  Sim.Engine.Mailbox.recv sock.inbox

let recv_timeout sock d =
  check_open sock;
  Sim.Engine.Mailbox.recv_timeout sock.inbox d

let pending sock = Sim.Engine.Mailbox.length sock.inbox

let close sock =
  if not sock.closed then begin
    sock.closed <- true;
    Netstack.udp_unregister sock.stack ~port:sock.port
  end
