exception Truncated

module Wr = struct
  (* A growable byte sink over a [Bytes.t] backing store.  Unlike the
     original [Buffer.t]-backed writer, capacity survives [clear]: a
     pooled writer that has grown to fit one record batch serves the
     next batch with zero further allocation, which is what the hot
     codec's buffer pool relies on. *)
  type t = { mutable buf : Bytes.t; mutable len : int }

  let create ?(initial = 64) () =
    { buf = Bytes.create (max 1 initial); len = 0 }

  let length b = b.len
  let capacity b = Bytes.length b.buf

  (* Amortised doubling: grow to at least [need] by repeatedly doubling
     the current capacity, so n appends cost O(n) total. *)
  let ensure_capacity b need =
    let cap = Bytes.length b.buf in
    if need > cap then begin
      let cap' = ref (max cap 1) in
      while !cap' < need do
        cap' := !cap' * 2
      done;
      let nb = Bytes.create !cap' in
      Bytes.blit b.buf 0 nb 0 b.len;
      b.buf <- nb
    end

  let contents b = Bytes.sub_string b.buf 0 b.len

  let u8 b v =
    ensure_capacity b (b.len + 1);
    Bytes.unsafe_set b.buf b.len (Char.unsafe_chr (v land 0xff));
    b.len <- b.len + 1

  let u16 b v =
    ensure_capacity b (b.len + 2);
    Bytes.unsafe_set b.buf b.len (Char.unsafe_chr ((v lsr 8) land 0xff));
    Bytes.unsafe_set b.buf (b.len + 1) (Char.unsafe_chr (v land 0xff));
    b.len <- b.len + 2

  let u32 b v =
    let v = Int32.to_int v in
    ensure_capacity b (b.len + 4);
    Bytes.unsafe_set b.buf b.len (Char.unsafe_chr ((v lsr 24) land 0xff));
    Bytes.unsafe_set b.buf (b.len + 1) (Char.unsafe_chr ((v lsr 16) land 0xff));
    Bytes.unsafe_set b.buf (b.len + 2) (Char.unsafe_chr ((v lsr 8) land 0xff));
    Bytes.unsafe_set b.buf (b.len + 3) (Char.unsafe_chr (v land 0xff));
    b.len <- b.len + 4

  let u64 b v =
    u32 b (Int64.to_int32 (Int64.shift_right_logical v 32));
    u32 b (Int64.to_int32 v)

  let bytes b s =
    let n = String.length s in
    ensure_capacity b (b.len + n);
    Bytes.blit_string s 0 b.buf b.len n;
    b.len <- b.len + n

  (* Blit another writer's contents in directly — no intermediate
     string, unlike [bytes b (contents src)]. *)
  let append b src =
    ensure_capacity b (b.len + src.len);
    Bytes.blit src.buf 0 b.buf b.len src.len;
    b.len <- b.len + src.len

  let pad_to b align =
    let rem = b.len mod align in
    if rem <> 0 then begin
      let pad = align - rem in
      ensure_capacity b (b.len + pad);
      Bytes.fill b.buf b.len pad '\000';
      b.len <- b.len + pad
    end

  (* Capacity is retained: clearing a grown writer keeps its backing
     store so reuse across a batch allocates nothing. *)
  let clear b = b.len <- 0
end

module Rd = struct
  type t = { data : string; mutable off : int; limit : int }

  let of_string s = { data = s; off = 0; limit = String.length s }

  let need r n = if r.off + n > r.limit then raise Truncated

  let sub r ~len =
    need r len;
    let child = { data = r.data; off = r.off; limit = r.off + len } in
    r.off <- r.off + len;
    child

  let pos r = r.off
  let remaining r = r.limit - r.off
  let at_end r = r.off >= r.limit

  let u8 r =
    need r 1;
    let v = Char.code r.data.[r.off] in
    r.off <- r.off + 1;
    v

  let u16 r =
    let hi = u8 r in
    let lo = u8 r in
    (hi lsl 8) lor lo

  let u32 r =
    let a = u16 r and b = u16 r in
    Int32.logor (Int32.shift_left (Int32.of_int a) 16) (Int32.of_int b)

  let u64 r =
    let hi = u32 r and lo = u32 r in
    Int64.logor
      (Int64.shift_left (Int64.of_int32 hi) 32)
      (Int64.logand (Int64.of_int32 lo) 0xFFFFFFFFL)

  let bytes r n =
    need r n;
    let s = String.sub r.data r.off n in
    r.off <- r.off + n;
    s

  let align r a =
    let rem = r.off mod a in
    if rem <> 0 then ignore (bytes r (a - rem))

  let peek_at r off f =
    if off < 0 || off > String.length r.data then raise Truncated;
    f { data = r.data; off; limit = String.length r.data }
end
