(** Big-endian byte readers and writers shared by every wire format in
    the repository (XDR, Courier, DNS messages, Clearinghouse).

    Writers are growable; readers raise {!Truncated} instead of
    returning short reads, so protocol decoders can be written
    straight-line. *)

exception Truncated

module Wr : sig
  type t

  val create : ?initial:int -> unit -> t
  val length : t -> int

  (** Current backing-store size in bytes ([>= length]). *)
  val capacity : t -> int

  (** Grow the backing store (by amortised doubling) until it holds at
      least [n] bytes.  Appends never grow more than once per call. *)
  val ensure_capacity : t -> int -> unit

  val contents : t -> string
  val u8 : t -> int -> unit
  val u16 : t -> int -> unit
  val u32 : t -> int32 -> unit
  val u64 : t -> int64 -> unit

  (** Raw bytes, no length prefix. *)
  val bytes : t -> string -> unit

  (** [append t src] blits [src]'s contents onto [t] directly, with no
      intermediate string allocation. *)
  val append : t -> t -> unit

  (** Pad with zero bytes until [length] is a multiple of [align]. *)
  val pad_to : t -> int -> unit

  (** Reset [length] to zero.  Capacity is retained, so a cleared
      writer reuses its backing store — the basis of buffer pooling. *)
  val clear : t -> unit
end

module Rd : sig
  type t

  val of_string : string -> t

  (** [sub r ~len] is a reader over the next [len] bytes, advancing the
      parent past them. *)
  val sub : t -> len:int -> t

  val pos : t -> int
  val remaining : t -> int
  val at_end : t -> bool
  val u8 : t -> int
  val u16 : t -> int
  val u32 : t -> int32
  val u64 : t -> int64
  val bytes : t -> int -> string

  (** Skip padding so that [pos] is a multiple of [align]. *)
  val align : t -> int -> unit

  (** Re-read from an absolute offset (used by DNS name compression).
      Does not move the read cursor. *)
  val peek_at : t -> int -> (t -> 'a) -> 'a
end
