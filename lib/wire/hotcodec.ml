(* Shared substrate for hand-coded codecs on the hot HNS record
   shapes.  The shape-specific encoders live next to the schema they
   serve (Hns.Hot_codec); this module owns what they share: the buffer
   pool, the wire.codec.* accounting, the calibrated hand-marshalling
   cost model, and XDR-framing primitives that guarantee the hand
   codecs stay byte-identical to the Generic_marshal/Xdr wire form. *)

(* --- accounting ----------------------------------------------------- *)

let m_hand_encodes = Obs.Metrics.counter "wire.codec.hand_encodes"
let m_hand_decodes = Obs.Metrics.counter "wire.codec.hand_decodes"
let m_fallbacks = Obs.Metrics.counter "wire.codec.generic_fallbacks"
let m_encode_bytes = Obs.Metrics.counter "wire.codec.encode_bytes"
let m_decode_bytes = Obs.Metrics.counter "wire.codec.decode_bytes"
let m_pool_hits = Obs.Metrics.counter "wire.codec.pool_hits"
let m_pool_misses = Obs.Metrics.counter "wire.codec.pool_misses"
let m_value_allocs = Obs.Metrics.counter "wire.codec.value_materializations"

let count_encode ~bytes =
  Obs.Metrics.incr m_hand_encodes;
  Obs.Metrics.add m_encode_bytes bytes

let count_decode ~bytes =
  Obs.Metrics.incr m_hand_decodes;
  Obs.Metrics.add m_decode_bytes bytes

let count_fallback () = Obs.Metrics.incr m_fallbacks
let count_value_materialization () = Obs.Metrics.incr m_value_allocs
let hand_decodes () = Obs.Metrics.value m_hand_decodes
let generic_fallbacks () = Obs.Metrics.value m_fallbacks
let value_materializations () = Obs.Metrics.value m_value_allocs

(* --- cost model ----------------------------------------------------- *)

(* Calibrated to the paper's hand-coded marshalling band: 0.65 ms for a
   single resource record and 2.6 ms for six (Table 3.2), a straight
   line through (1, 0.65) and (6, 2.6). *)
type cost_model = { per_call_ms : float; per_record_ms : float }

let cost m ~records = m.per_call_ms +. (m.per_record_ms *. float records)

(* --- buffer pool ---------------------------------------------------- *)

(* A tiny free-list of writers.  Borrowed writers keep whatever
   capacity they grew to, so after warm-up a batch of encodes reuses
   one backing store instead of allocating per record (the same trick
   generated stubs can't play: each stub call builds its own
   intermediate tree and buffer). *)
type pool = { mutable free : Bytebuf.Wr.t list; mutable outstanding : int }

let create_pool () = { free = []; outstanding = 0 }

let borrow p =
  p.outstanding <- p.outstanding + 1;
  match p.free with
  | w :: rest ->
      p.free <- rest;
      Obs.Metrics.incr m_pool_hits;
      Bytebuf.Wr.clear w;
      w
  | [] ->
      Obs.Metrics.incr m_pool_misses;
      Bytebuf.Wr.create ~initial:128 ()

let give_back p w =
  p.outstanding <- p.outstanding - 1;
  p.free <- w :: p.free

(* Hand-rolled instead of [Fun.protect]: this wraps every single hot
   encode, and protect's closure allocation plus Finally_raised
   wrapping is measurable at that grain. *)
let with_wr p f =
  let w = borrow p in
  match f w with
  | v ->
      give_back p w;
      v
  | exception e ->
      give_back p w;
      raise e

(* A process-wide pool for callers with no natural batch scope (e.g.
   the server-side bundle synthesizer encoding one marker record). *)
let shared_pool = create_pool ()

(* --- XDR framing primitives ----------------------------------------- *)

(* These mirror Wire.Xdr exactly (u32 length + bytes + pad to 4 for
   strings; enums and uints as big-endian u32) so hand-codec output
   interops with old servers that decode via Generic_marshal. *)

let put_string32 w s =
  Bytebuf.Wr.u32 w (Int32.of_int (String.length s));
  Bytebuf.Wr.bytes w s;
  Bytebuf.Wr.pad_to w 4

let get_string32 r =
  let n = Int32.to_int (Bytebuf.Rd.u32 r) in
  if n < 0 || n > Bytebuf.Rd.remaining r then raise Bytebuf.Truncated;
  let s = Bytebuf.Rd.bytes r n in
  Bytebuf.Rd.align r 4;
  s

let put_u32 = Bytebuf.Wr.u32
let get_u32 = Bytebuf.Rd.u32
