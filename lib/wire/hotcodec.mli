(** Shared substrate for hand-coded codecs on the hot HNS record
    shapes (meta-bundle mappings, prefetch-tail HostAddress rows,
    journal deltas).

    The shape-specific encoders live with the schema they serve; this
    module owns the parts they share: a buffer pool with reuse across
    a batch, the [wire.codec.*] accounting, the calibrated hand-
    marshalling cost model (the paper's 0.65–2.6 ms band, vs the
    generated-stub 10.3–24.9 ms band in {!Generic_marshal.cost}), and
    XDR framing primitives that keep hand output byte-identical to the
    {!Xdr} wire form so old servers interop. *)

(** {1 Accounting}

    Counters registered as [wire.codec.*] (passing the
    {!Obs.Metrics.lint} structure check): encode/decode counts and
    bytes, pool hits/misses, generic fallbacks, and [Value]-tree
    materialisations — the last lets tests assert a decode path built
    {e no} intermediate tree. *)

val count_encode : bytes:int -> unit
val count_decode : bytes:int -> unit

(** A hot-path decode met an unknown/cold shape and fell back to
    {!Generic_marshal}. *)
val count_fallback : unit -> unit

(** A [Value] tree was materialised on a path the zero-copy decode is
    supposed to keep tree-free. *)
val count_value_materialization : unit -> unit

val hand_decodes : unit -> int
val generic_fallbacks : unit -> int
val value_materializations : unit -> int

(** {1 Cost model} *)

type cost_model = { per_call_ms : float; per_record_ms : float }

(** [cost m ~records] — virtual milliseconds to hand-marshal (or
    demarshal) a payload of [records] resource records. *)
val cost : cost_model -> records:int -> float

(** {1 Buffer pool} *)

type pool

val create_pool : unit -> pool

(** [with_wr pool f] borrows a cleared writer (reusing a previously
    grown backing store when one is free — a pool hit), runs [f], and
    returns the writer to the pool. *)
val with_wr : pool -> (Bytebuf.Wr.t -> 'a) -> 'a

(** Process-wide pool for callers with no natural batch scope. *)
val shared_pool : pool

(** {1 XDR framing primitives}

    Byte-identical to {!Xdr}: strings as u32 length + bytes + pad to
    4; uints/enums as big-endian u32. *)

val put_string32 : Bytebuf.Wr.t -> string -> unit
val get_string32 : Bytebuf.Rd.t -> string
val put_u32 : Bytebuf.Wr.t -> int32 -> unit
val get_u32 : Bytebuf.Rd.t -> int32
