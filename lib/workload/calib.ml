module Paper = struct
  (* "a BIND name to address lookup takes 27 msec." *)
  let bind_lookup_ms = 27.0

  (* "a Clearinghouse name to address lookup takes 156 msec." *)
  let clearinghouse_lookup_ms = 156.0

  (* "Our initial implementation of FindNSM required elapsed times of
     460 msec. per call." *)
  let find_nsm_cold_ms = 460.0

  (* "By installing a cache, we were able to reduce this cost to 88
     msec." *)
  let find_nsm_cached_ms = 88.0

  (* "The remote call to the NSM takes 22-38 msec., depending on the
     RPC system used." *)
  let nsm_remote_call_lo_ms = 22.0
  let nsm_remote_call_hi_ms = 38.0

  (* "In total, the basic overhead of HNS naming is between 88 and 126
     msec." *)
  let basic_overhead_lo_ms = 88.0
  let basic_overhead_hi_ms = 126.0

  (* "Binding using this scheme took 200 msec." *)
  let interim_localfile_binding_ms = 200.0

  (* "We implemented such a scheme on top of the Clearinghouse, and
     found that binding took 166 msec." *)
  let rereg_clearinghouse_binding_ms = 166.0

  (* "The actual preload cost was measured to be about 390 msec." *)
  let preload_ms = 390.0

  (* "(Locating them on the same host reduces the timings by about 20
     msec. in applicable configurations.)" *)
  let colocation_same_host_saving_ms = 20.0

  (* Table 3.1: Performance of HRPC Binding for Various Colocation
     Arrangements (msec.). *)
  let table_3_1 =
    [
      ("[Client, HNS, NSMs]", 460.0, 180.0, 104.0);
      ("[Client] [HNS, NSMs]", 517.0, 235.0, 137.0);
      ("[HNS] [Client, NSMs]", 515.0, 232.0, 140.0);
      ("[NSMs] [Client, HNS]", 509.0, 225.0, 147.0);
      ("[Client] [HNS] [NSMs]", 547.0, 261.0, 181.0);
    ]

  (* Table 3.2: The Effect of Marshalling Costs on Cache Access Speed
     (msec.). *)
  let table_3_2 = [ (1, 20.23, 11.11, 0.83); (6, 32.34, 26.17, 1.22) ]

  (* "the standard BIND marshalling routines ... take .65 msec. and
     2.6 msec. for one and six resource record lookups" *)
  let hand_marshal = [ (1, 0.65); (6, 2.6) ]

  (* "estimating C(remote call) as 33 msec." *)
  let eq1_remote_call_ms = 33.0

  (* "the cache hit fraction obtained when the HNS is remote must
     exceed that when it is local by an additional 11%" *)
  let eq1_hns_breakeven = 0.11

  (* "an additional 42% cache hit must be experienced by the remote
     NSMs" *)
  let eq1_nsm_breakeven = 0.42
end

(* --- Network.
   A lightly loaded 10 Mbit/s Ethernet between MicroVAX-IIs: per-hop
   latency absorbs interface + kernel protocol-stack time (the
   dominant term on a 1 MIPS machine), chosen so that colocating two
   remote parties on one host saves the paper's ~20 ms across an
   import's four message exchanges. *)
let ethernet_latency_ms = 5.0
let ethernet_per_byte_ms = 0.0008
let loopback_ms = 0.05

(* --- BIND: "BIND does no authentication and keeps all its
   information in primary memory", total lookup 27 ms. Two network
   hops (2 x 2.0) + server CPU + hand marshalling of the answer. *)
let bind_service_overhead_ms = 16.6
let bind_per_answer_ms = 0.65

(* --- The meta-BIND: same code base, but every HNS mapping costed
   about 67 ms end to end (six mappings ~ 372 ms of the 460 ms cold
   FindNSM). The difference over the public BIND is the modified
   server's dynamic-data path; the generated-stub marshalling charges
   appear on the client side via [generated_cost]. *)
let meta_bind_service_overhead_ms = 37.0

(* --- Clearinghouse: "each access is authenticated, and virtually
   all data is retrieved from disk", total lookup 156 ms of which the
   network is a small part. *)
let ch_auth_ms = 60.0
let ch_disk_ms = 76.0

(* --- Marshalling. Generated-stub demarshal costs from Table 3.2:
   marshalled-hit minus demarshalled-hit gives 10.28 ms at 1 RR and
   24.95 ms at 6 RRs. With a 1-RR answer valued at 6 tree nodes and a
   6-RR answer at 31, the linear fit is: *)
let generated_cost = { Wire.Generic_marshal.per_call_ms = 6.76; per_node_ms = 0.5868 }

(* Hand-coded path: linear through (1, 0.65) and (6, 2.6). *)
let hand_cost = { Wire.Hotcodec.per_call_ms = 0.26; per_record_ms = 0.39 }

let hand_marshal_ms ~rr_count =
  Wire.Hotcodec.cost hand_cost ~records:rr_count

(* Delta/preload absorption through the hand codec: the 19.8 ms
   per-record verification cost was generated-stub demarshal plus
   consistency checks; hand demarshal leaves just the checks and the
   0.65 ms record decode. *)
let hand_preload_record_ms = 1.9

(* --- Caches. Demarshalled hits from Table 3.2: 0.83 ms at 1 RR (6
   nodes), 1.22 ms at 6 RRs (31 nodes). *)
let cache_hit_overhead_ms = 0.736
let cache_hit_per_node_ms = 0.0156
let cache_insert_ms = 0.15

(* NSM caches show ~16 ms marshalled hits on Binding values (Table 3.1
   col C vs the 88 ms FindNSM base): heavier management than the flat
   meta entries. *)
let nsm_cache_hit_overhead_ms = 4.5

(* --- HNS library processing per data mapping. A fully cached
   FindNSM costs 88 ms across six mappings; the marshalled-cache hits
   account for ~53 ms of it, the rest is HNS bookkeeping (TTL checks,
   key construction, designation logic). *)
let hns_mapping_overhead_ms = 5.8

(* --- Preload: ~390 ms to transfer and absorb ~2 KB of meta-naming
   information (a dozen records); most of the cost is per-record
   verification through the generated marshalling path. *)
let preload_record_ms = 19.8

(* --- Remote servers. The paper's remote NSM call is 22-38 ms; our
   server-side charge plus two network hops and protocol processing
   lands mid-band, and also supplies the ~50 ms per extra remote party
   seen across Table 3.1's rows. *)
let nsm_service_overhead_ms = 38.0
let agent_service_overhead_ms = 38.0
let portmapper_service_overhead_ms = 18.0

(* Bare remote-call overhead of each RPC system (server-side charge
   for a minimal call): Sun RPC lands at the paper's 22 ms end of the
   band, Courier (authentication-less but connection-oriented and
   word-at-a-time) at the 38 ms end. *)
let sunrpc_call_overhead_ms = 12.0
let courier_call_overhead_ms = 18.0

(* NSM internal work on a backend miss (drives Table 3.1's ~76 ms
   NSM-miss penalty together with the 27 ms BIND lookup and the
   portmapper exchange). *)
let nsm_per_query_ms = 40.0

(* --- Interim local-file binding: a 100-entry replicated file, read
   (no resident daemon) and parsed per import, 200 ms total. *)
let localfile_read_ms = 40.0
let localfile_parse_per_entry_ms = 1.6
let localfile_population = 100
