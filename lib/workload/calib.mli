(** Calibration: every 1987 cost constant in one place.

    The simulation reproduces the paper's measurement {e structure}
    (which remote calls happen, what gets cached, what gets
    marshalled); these constants pin the per-operation costs to the
    values the paper reports for its MicroVAX-II/Ethernet testbed.
    Nothing outside this module hard-codes a millisecond.

    {!Paper} holds the published numbers verbatim — they are the
    targets benches compare against, never inputs to the simulation.
    The rest are simulation inputs, derived from the paper's cost
    decomposition as documented next to each value. *)

module Paper : sig
  val bind_lookup_ms : float (* 27 *)
  val clearinghouse_lookup_ms : float (* 156 *)
  val find_nsm_cold_ms : float (* 460 *)
  val find_nsm_cached_ms : float (* 88 *)
  val nsm_remote_call_lo_ms : float (* 22 *)
  val nsm_remote_call_hi_ms : float (* 38 *)
  val basic_overhead_lo_ms : float (* 88 *)
  val basic_overhead_hi_ms : float (* 126 *)
  val interim_localfile_binding_ms : float (* 200 *)
  val rereg_clearinghouse_binding_ms : float (* 166 *)
  val preload_ms : float (* 390 *)
  val colocation_same_host_saving_ms : float (* ~20 *)

  (** Table 3.1 rows: (arrangement, cache miss, HNS hit, HNS+NSM hit). *)
  val table_3_1 : (string * float * float * float) list

  (** Table 3.2 rows: (rr count, miss, marshalled hit, demarshalled hit). *)
  val table_3_2 : (int * float * float * float) list

  (** Standard BIND (hand-coded) marshalling: (rr count, ms). *)
  val hand_marshal : (int * float) list

  (** Equation (1) worked estimates: C(remote)=33, and the derived
      break-even extra-hit fractions. *)
  val eq1_remote_call_ms : float

  val eq1_hns_breakeven : float (* 0.11 *)
  val eq1_nsm_breakeven : float (* 0.42 *)
end

(** {1 Network} *)

val ethernet_latency_ms : float
val ethernet_per_byte_ms : float
val loopback_ms : float

(** {1 Name servers} *)

val bind_service_overhead_ms : float
val bind_per_answer_ms : float

(** The meta-BIND is slower per query: dynamic data, UNSPEC handling,
    and the HNS reaches it through its generated-stub interface. *)
val meta_bind_service_overhead_ms : float

val ch_auth_ms : float
val ch_disk_ms : float

(** {1 Marshalling (Table 3.2)} *)

(** Generated-stub path: per-call entry cost and per-value-node cost,
    fit to demarshal costs of 10.28 ms (1 RR) / 24.95 ms (6 RRs). *)
val generated_cost : Wire.Generic_marshal.cost_model

(** Hand-coded BIND routines as a cost model: linear through 0.65 ms
    (1 RR) and 2.6 ms (6 RRs). What the hot codec charges when it
    handles a record shape. *)
val hand_cost : Wire.Hotcodec.cost_model

(** Hand-coded BIND routines: 0.65 ms (1 RR) / 2.6 ms (6 RRs). *)
val hand_marshal_ms : rr_count:int -> float

(** Per-record zone-transfer/delta absorption when the record decodes
    through the hand codec instead of the generated stubs. *)
val hand_preload_record_ms : float

(** {1 Caches} *)

val cache_hit_overhead_ms : float
val cache_hit_per_node_ms : float
val cache_insert_ms : float

(** NSM result caches carry slightly heavier management. *)
val nsm_cache_hit_overhead_ms : float

(** {1 HNS processing} *)

(** Charged once per data mapping by the HNS library itself. *)
val hns_mapping_overhead_ms : float

val preload_record_ms : float

(** {1 Remote servers} *)

(** Server-side cost of a remote NSM or HNS-agent call. *)
val nsm_service_overhead_ms : float

val agent_service_overhead_ms : float
val portmapper_service_overhead_ms : float

(** NSM internal processing on a cache miss. *)
val nsm_per_query_ms : float

(** Bare per-call server-side overhead of each RPC system, for the
    paper's "22-38 msec., depending on the RPC system used". *)
val sunrpc_call_overhead_ms : float

val courier_call_overhead_ms : float

(** {1 Baselines} *)

val localfile_read_ms : float
val localfile_parse_per_entry_ms : float
val localfile_population : int
