(* Fan-out harness: a partitioned, replicated meta-store deployment on
   the virtual clock. See fanout.mli for the model. *)

type config = {
  label : string;
  partitions : int;
  replicas : int;
  chain_k : int;
  clients : int;
  reads_per_client : int;
  read_interval_ms : float;
  contexts_per_partition : int;
  rww_rounds : int;
  read_your_writes : bool;
}

type report = {
  config : config;
  reads : int;
  failed_reads : int;
  read_ms : Sim.Stats.t;
  root_qps : float;
  primary_qps : float;
  replica_qps : float;
  converge_ms : float;
  chain_depth : int;
  stale_reads : int;
  primary_fallbacks : int;
  referral_chases : int;
  referral_hits : int;
  routed_reads : int;
  duration_ms : float;
  sim_events : int;
}

let plabel i = Printf.sprintf "p%d" i
let ctx_name ~partition j = Printf.sprintf "c%d.%s" j (plabel partition)
let ctx_key ~partition j = Hns.Meta_schema.context_key (ctx_name ~partition j)

let validate cfg =
  if cfg.partitions <= 0 then invalid_arg "Fanout: partitions <= 0";
  if cfg.replicas < 0 then invalid_arg "Fanout: replicas < 0";
  if cfg.chain_k <= 0 then invalid_arg "Fanout: chain_k <= 0";
  if cfg.clients <= 0 then invalid_arg "Fanout: clients <= 0";
  if cfg.reads_per_client < 0 then invalid_arg "Fanout: reads_per_client < 0";
  if cfg.read_interval_ms <= 0.0 then invalid_arg "Fanout: read_interval <= 0";
  if cfg.contexts_per_partition <= 0 then
    invalid_arg "Fanout: contexts_per_partition <= 0";
  if cfg.rww_rounds < 0 then invalid_arg "Fanout: rww_rounds < 0";
  if cfg.rww_rounds > 0 && cfg.contexts_per_partition < 2 then
    invalid_arg "Fanout: rww needs a second context to write"

(* Position of replica [j] (0-based) in the k-ary chained tree over
   nodes [primary; replicas.(0); replicas.(1); ...]: node 0 is the
   primary at depth 0, the parent of node [m] is node [(m-1)/k]. *)
let tree_parent ~k j = j / k

let rec tree_depth ~k node =
  if node = 0 then 0 else 1 + tree_depth ~k ((node - 1) / k)

let str_record ~key v =
  Dns.Rr.make ~ttl:3600l key
    (Dns.Rr.Unspec (Wire.Xdr.to_string Hns.Meta_schema.string_ty (Wire.Value.str v)))

let fail_on what = function
  | Ok _ -> ()
  | Error e ->
      failwith (Printf.sprintf "fanout %s: %s" what (Hns.Errors.to_string e))

let run cfg =
  validate cfg;
  let engine = Sim.Engine.create () in
  let topo = Sim.Topology.create () in
  let net = Transport.Netstack.create engine topo in
  let stack n = Transport.Netstack.attach net (Sim.Topology.add_host topo n) in
  (* Referral glue carries only IPs: every meta server — root,
     partition primaries, replicas — answers on the common port. *)
  let port = Transport.Address.Well_known.hns_meta in
  let s_root = stack "fan-root" in
  let s_admin = stack "fan-admin" in
  let s_writer = stack "fan-writer" in
  let root = Dns.Server.create s_root ~port ~allow_update:true () in
  Dns.Server.add_zone root
    (Dns.Zone.simple ~origin:Hns.Meta_schema.zone_origin []);
  let partitions =
    Array.init cfg.partitions (fun i ->
        let cut = Hns.Meta_schema.partition_cut (plabel i) in
        let records =
          List.init cfg.contexts_per_partition (fun j ->
              str_record ~key:(ctx_key ~partition:i j) "UW-BIND")
        in
        let zone = Dns.Zone.simple ~origin:cut records in
        let primary =
          Dns.Server.create
            (stack (Printf.sprintf "fan-%s" (plabel i)))
            ~port ~allow_update:true ()
        in
        Dns.Server.add_zone primary zone;
        let replicas =
          Array.init cfg.replicas (fun j ->
              Dns.Server.create
                (stack (Printf.sprintf "fan-%sr%d" (plabel i) j))
                ~port ())
        in
        (cut, zone, primary, replicas))
  in
  let client_stacks =
    Array.init cfg.clients (fun c -> stack (Printf.sprintf "fan-c%03d" c))
  in
  let result = ref None in
  Sim.Engine.spawn engine ~name:"fanout" (fun () ->
      Dns.Server.start root;
      Array.iter
        (fun (_, _, primary, replicas) ->
          Dns.Server.start primary;
          Array.iter Dns.Server.start replicas)
        partitions;
      (* Chained replica trees: replica j pulls from its tree parent
         (the primary for the first [chain_k], an upper replica
         otherwise) and the parent's server NOTIFYs it — so one update
         wakes the tree level by level, each level bounded by the
         parent's notify fan-out. *)
      let secondaries =
        Array.map
          (fun (cut, _, primary, replicas) ->
            Array.mapi
              (fun j replica ->
                let parent = tree_parent ~k:cfg.chain_k j in
                let parent_server =
                  if parent = 0 then primary else replicas.(parent - 1)
                in
                let sec =
                  Dns.Secondary.attach replica
                    ~primary:(Dns.Server.addr parent_server)
                    ~zone:cut ~refresh_ms:60_000.0 ~mode:Dns.Secondary.Ixfr
                    ~chain_depth:(tree_depth ~k:cfg.chain_k (j + 1))
                    ()
                in
                Dns.Server.register_notify parent_server
                  (Dns.Server.addr replica);
                sec)
              replicas)
          partitions
      in
      (* Delegate each partition from the root: NS records at the cut
         (primary first — the glue-order contract) plus glue. *)
      let admin =
        Hns.Meta_client.create s_admin ~meta_server:(Dns.Server.addr root)
          ~cache:(Hns.Cache.create ~mode:Hns.Cache.Demarshalled ())
          ()
      in
      Array.iteri
        (fun i (_, _, primary, replicas) ->
          fail_on
            (Printf.sprintf "register_partition %s" (plabel i))
            (Hns.Admin.register_partition admin ~label:(plabel i)
               ~primary:(Dns.Server.addr primary)
               ~replicas:
                 (Array.to_list (Array.map Dns.Server.addr replicas))
               ()))
        partitions;
      let mk_client stack =
        Hns.Meta_client.create stack ~meta_server:(Dns.Server.addr root)
          ~read_your_writes:cfg.read_your_writes
          ~cache:(Hns.Cache.create ~mode:Hns.Cache.Demarshalled ())
          ()
      in
      let mclients = Array.map mk_client client_stacks in
      (* Warm-up: one read per partition chases each referral once, so
         the measured phase runs on cached cuts. *)
      Array.iter
        (fun mc ->
          for i = 0 to cfg.partitions - 1 do
            fail_on "warm lookup"
              (Hns.Meta_client.lookup mc
                 ~key:(ctx_key ~partition:i 0)
                 ~ty:Hns.Meta_schema.string_ty)
          done)
        mclients;
      (* Measured open read phase: every client paces
         [reads_per_client] cold reads (cache flushed each time, so
         each is a real remote round trip), spread round-robin over
         partitions and contexts. *)
      let q_before server = Dns.Server.queries_served server in
      let root_q0 = q_before root in
      let prim_q0 =
        Array.map (fun (_, _, p, _) -> q_before p) partitions
      in
      let rep_q0 =
        Array.map (fun (_, _, _, rs) -> Array.map q_before rs) partitions
      in
      let t0 = Sim.Engine.time () in
      let read_ms = Sim.Stats.create ~name:"fanout.read_ms" () in
      let failed = ref 0 in
      let finished = ref 0 in
      let all_done = Sim.Engine.Ivar.create () in
      Array.iteri
        (fun c mc ->
          Sim.Engine.spawn_child ~name:"fanout.client" (fun () ->
              Sim.Engine.sleep
                (cfg.read_interval_ms *. float_of_int c
                /. float_of_int cfg.clients);
              for r = 0 to cfg.reads_per_client - 1 do
                if r > 0 then Sim.Engine.sleep cfg.read_interval_ms;
                let p = (c + r) mod cfg.partitions in
                let j = r mod cfg.contexts_per_partition in
                Hns.Cache.flush (Hns.Meta_client.cache mc);
                let t = Sim.Engine.time () in
                (match
                   Hns.Meta_client.lookup mc
                     ~key:(ctx_key ~partition:p j)
                     ~ty:Hns.Meta_schema.string_ty
                 with
                | Ok (Some _) -> ()
                | Ok None | Error _ -> incr failed);
                Sim.Stats.add read_ms (Sim.Engine.time () -. t)
              done;
              incr finished;
              if !finished = cfg.clients then
                ignore (Sim.Engine.Ivar.fill_if_empty all_done ())))
        mclients;
      Sim.Engine.Ivar.read all_done;
      let duration_ms = Float.max 1.0 (Sim.Engine.time () -. t0) in
      let duration_s = duration_ms /. 1000.0 in
      let root_qps = float_of_int (q_before root - root_q0) /. duration_s in
      let primary_qps =
        let total =
          Array.to_list partitions
          |> List.mapi (fun i (_, _, p, _) -> q_before p - prim_q0.(i))
          |> List.fold_left ( + ) 0
        in
        float_of_int total /. float_of_int cfg.partitions /. duration_s
      in
      let replica_qps =
        if cfg.replicas = 0 then 0.0
        else
          let total = ref 0 in
          Array.iteri
            (fun i (_, _, _, rs) ->
              Array.iteri
                (fun j r -> total := !total + (q_before r - rep_q0.(i).(j)))
                rs)
            partitions;
          float_of_int !total
          /. float_of_int (cfg.partitions * cfg.replicas)
          /. duration_s
      in
      (* Convergence: one dynamic update on partition 0, measured to
         the instant the whole replica tree has caught up. The write
         routes through the admin's learned cut (or chases it via the
         Not_zone probe on first contact). *)
      let _, zone0, _, _ = partitions.(0) in
      let tc0 = Sim.Engine.time () in
      fail_on "convergence store"
        (Hns.Meta_client.store admin
           ~key:(ctx_key ~partition:0 0)
           ~ty:Hns.Meta_schema.string_ty
           (Wire.Value.str "UW-BIND-V2"));
      let target = Dns.Zone.serial zone0 in
      let rec wait () =
        if
          Array.for_all
            (fun s -> Int32.compare (Dns.Secondary.serial s) target >= 0)
            secondaries.(0)
        then ()
        else if Sim.Engine.time () -. tc0 > 55_000.0 then
          failwith "fanout: replica tree did not converge before the backstop"
        else begin
          Sim.Engine.sleep 2.0;
          wait ()
        end
      in
      wait ();
      let converge_ms = Sim.Engine.time () -. tc0 in
      (* Read-your-writes probe: a writer updates a record and reads
         it straight back (cold), [rww_rounds] times. With pinning on
         the routed read is restricted to caught-up replicas (falling
         back to the partition primary), so it can never observe a
         value older than its own write. *)
      let stale = ref 0 in
      if cfg.rww_rounds > 0 then begin
        let writer = mk_client s_writer in
        let rww_key = ctx_key ~partition:0 1 in
        fail_on "rww warm"
          (Hns.Meta_client.lookup writer ~key:rww_key
             ~ty:Hns.Meta_schema.string_ty);
        for i = 1 to cfg.rww_rounds do
          let v = Printf.sprintf "v%04d" i in
          fail_on "rww store"
            (Hns.Meta_client.store writer ~key:rww_key
               ~ty:Hns.Meta_schema.string_ty (Wire.Value.str v));
          Hns.Cache.flush (Hns.Meta_client.cache writer);
          (match
             Hns.Meta_client.lookup writer ~key:rww_key
               ~ty:Hns.Meta_schema.string_ty
           with
          | Ok (Some got) when String.equal (Wire.Value.get_str got) v -> ()
          | Ok _ | Error _ -> incr stale);
          (* Space the rounds out so each one races a fresh
             propagation window, not the tail of the last. *)
          Sim.Engine.sleep 300.0
        done
      end;
      let chain_depth =
        Array.fold_left
          (fun acc secs ->
            Array.fold_left
              (fun acc s -> max acc (Dns.Secondary.chain_depth s))
              acc secs)
          0 secondaries
      in
      let sum_clients f = Array.fold_left (fun acc mc -> acc + f mc) 0 mclients in
      let sum_sets f =
        sum_clients (fun mc ->
            List.fold_left
              (fun acc (_, rs) -> acc + f rs)
              0
              (Hns.Meta_client.partitions mc))
      in
      (* Tear down so the engine drains: detached secondaries stop
         re-arming their poll backstop, stopped servers close their
         service loops. *)
      Array.iter (Array.iter Dns.Secondary.detach) secondaries;
      Array.iter
        (fun (_, _, primary, replicas) ->
          Array.iter Dns.Server.stop replicas;
          Dns.Server.stop primary)
        partitions;
      Dns.Server.stop root;
      result :=
        Some
          {
            config = cfg;
            reads = cfg.clients * cfg.reads_per_client;
            failed_reads = !failed;
            read_ms;
            root_qps;
            primary_qps;
            replica_qps;
            converge_ms;
            chain_depth;
            stale_reads = !stale;
            primary_fallbacks = sum_sets Dns.Replica_set.primary_fallbacks;
            referral_chases = sum_clients Hns.Meta_client.referral_chases;
            referral_hits = sum_clients Hns.Meta_client.referral_hits;
            routed_reads = sum_sets Dns.Replica_set.routed;
            duration_ms;
            sim_events = 0;
          });
  Sim.Engine.run engine;
  match !result with
  | Some r -> { r with sim_events = Sim.Engine.events_executed engine }
  | None -> failwith "Fanout.run: harness process did not complete"

(* --- presets ------------------------------------------------------ *)

let point ?(label = "point") ?(partitions = 2) ?(replicas = 0) ?(chain_k = 2)
    ?(clients = 6) ?(reads_per_client = 16) ?(read_interval_ms = 25.0)
    ?(contexts_per_partition = 4) ?(rww_rounds = 0) ?(read_your_writes = true)
    () =
  {
    label;
    partitions;
    replicas;
    chain_k;
    clients;
    reads_per_client;
    read_interval_ms;
    contexts_per_partition;
    rww_rounds;
    read_your_writes;
  }

(* The scaling sweep: at point [m] the client fleet is [3m] strong;
   the replicated arm also grows the replica tree to [m] per
   partition, the baseline arm leaves every read on the partition
   primary. Flat-vs-linear primary QPS across the points is the
   headline. *)
let sweep_scales = [ 2; 4; 8 ]

let sweep () =
  List.map
    (fun m ->
      ( point
          ~label:(Printf.sprintf "single.x%d" m)
          ~replicas:0 ~clients:(3 * m) (),
        point
          ~label:(Printf.sprintf "tree.x%d" m)
          ~replicas:m ~clients:(3 * m) () ))
    sweep_scales

let rww_config ~pinned () =
  point
    ~label:(if pinned then "rww_pinned" else "rww_unpinned")
    ~replicas:3 ~clients:2 ~reads_per_client:4 ~rww_rounds:12
    ~read_your_writes:pinned ()

(* --- reporting ---------------------------------------------------- *)

let pct stats p =
  if Sim.Stats.count stats = 0 then 0.0 else Sim.Stats.percentile stats p

let pp_report ppf r =
  let c = r.config in
  Format.fprintf ppf
    "  %s: %d partitions x (1 primary + %d replicas, k=%d tree), %d clients@."
    c.label c.partitions c.replicas c.chain_k c.clients;
  Format.fprintf ppf
    "    reads %d (%d failed)  p50 %.1f  p99 %.1f ms  routed %d  fallbacks %d@."
    r.reads r.failed_reads (pct r.read_ms 50.0) (pct r.read_ms 99.0)
    r.routed_reads r.primary_fallbacks;
  Format.fprintf ppf
    "    qps: root %.1f  primary %.1f  replica %.1f   converge %.1f ms \
     (depth %d)@."
    r.root_qps r.primary_qps r.replica_qps r.converge_ms r.chain_depth;
  Format.fprintf ppf
    "    referrals: %d chased, %d cache hits;  rww: %d/%d stale;  %d sim \
     events@."
    r.referral_chases r.referral_hits r.stale_reads c.rww_rounds r.sim_events

let one_sample name v =
  let s = Sim.Stats.create ~name () in
  Sim.Stats.add s v;
  s

let report_rows r =
  let base = Printf.sprintf "propagation.fanout.%s" r.config.label in
  [
    (base ^ ".primary_qps", one_sample (base ^ ".primary_qps") r.primary_qps);
    (base ^ ".converge_ms", one_sample (base ^ ".converge_ms") r.converge_ms);
    (base ^ ".read_ms", r.read_ms);
  ]
  @
  if r.config.rww_rounds > 0 then
    [
      ( base ^ ".stale_reads",
        one_sample (base ^ ".stale_reads") (float_of_int r.stale_reads) );
    ]
  else []
