(** Fan-out harness: the partitioned, replicated meta-store under an
    open client fleet, on the virtual clock.

    One {!run} builds a full deployment from scratch — a root meta
    server, [partitions] delegated partition primaries (NS + glue cuts
    written through {!Hns.Admin.register_partition}), and per partition
    a [chain_k]-ary tree of [replicas] IXFR-chained {!Dns.Secondary}
    replicas with NOTIFY wired down each edge — then measures four
    things:

    - an {e open read phase}: [clients] concurrent paced clients, each
      issuing [reads_per_client] cold reads (cache flushed per read)
      spread round-robin over partitions; per-server QPS comes from
      [queries_served] deltas over the phase's virtual duration, so a
      flat [primary_qps] under a growing fleet is the scale-out signal;
    - {e convergence}: one dynamic update on partition 0, timed until
      every replica in that partition's tree reports the new serial;
    - {e read-your-writes}: [rww_rounds] write-then-cold-read rounds
      from a dedicated writer, counting reads that returned a value
      older than the writer's own write ([stale_reads] — 0 with
      [read_your_writes] pinning, observable staleness without);
    - routing counters: referral chases vs cached-cut hits, reads
      routed to replicas, pinned-read primary fallbacks.

    [replicas = 0] is the single-primary baseline arm: every read lands
    on its partition primary, so [primary_qps] grows linearly with the
    fleet. Runs are deterministic: same config, same report. *)

type config = {
  label : string;  (** names the [propagation.fanout.<label>.*] rows *)
  partitions : int;
  replicas : int;  (** per partition; 0 = single-primary baseline *)
  chain_k : int;  (** replica-tree arity (children per node) *)
  clients : int;
  reads_per_client : int;
  read_interval_ms : float;  (** pacing between one client's reads *)
  contexts_per_partition : int;
  rww_rounds : int;  (** 0 skips the read-your-writes phase *)
  read_your_writes : bool;  (** serial pinning on every client *)
}

type report = {
  config : config;
  reads : int;
  failed_reads : int;
  read_ms : Sim.Stats.t;  (** per-read latency over the read phase *)
  root_qps : float;  (** root server, total *)
  primary_qps : float;  (** mean per partition primary *)
  replica_qps : float;  (** mean per replica; 0 in the baseline arm *)
  converge_ms : float;  (** update applied -> whole tree caught up *)
  chain_depth : int;  (** deepest replica attached *)
  stale_reads : int;  (** own-write reads that saw an older value *)
  primary_fallbacks : int;  (** pinned reads that conceded to primary *)
  referral_chases : int;
  referral_hits : int;
  routed_reads : int;  (** reads the replica sets steered *)
  duration_ms : float;  (** virtual duration of the read phase *)
  sim_events : int;
}

(** Build the deployment, run all phases, tear down with the engine.
    Raises [Invalid_argument] on a nonsensical config and [Failure] if
    the tree fails to converge within the 55 s backstop. *)
val run : config -> report

(** Single config point with workload defaults: 2 partitions, no
    replicas, [chain_k] 2, 6 clients x 16 reads at 25 ms, 4 contexts
    per partition, no rww phase, pinning on. *)
val point :
  ?label:string ->
  ?partitions:int ->
  ?replicas:int ->
  ?chain_k:int ->
  ?clients:int ->
  ?reads_per_client:int ->
  ?read_interval_ms:float ->
  ?contexts_per_partition:int ->
  ?rww_rounds:int ->
  ?read_your_writes:bool ->
  unit ->
  config

(** Scale factors of the headline sweep (clients = 3x each). *)
val sweep_scales : int list

(** The headline A/B: per scale point [m], [(baseline, replicated)] —
    [3m] clients against 0 replicas vs [m] replicas per partition. *)
val sweep : unit -> (config * config) list

(** The read-your-writes A/B point: 3 replicas per partition, 12
    write-then-read rounds, pinning per [pinned]. *)
val rww_config : pinned:bool -> unit -> config

val pp_report : Format.formatter -> report -> unit

(** [(name, stats)] BENCH rows under [propagation.fanout.<label>.*]:
    [primary_qps], [converge_ms], [read_ms], plus [stale_reads] when
    the config ran an rww phase. *)
val report_rows : report -> (string * Sim.Stats.t) list
