(* Open-loop load harness. See openloop.mli for the model. *)

module S = Scenario
module C = Calib

(* --- arrival processes ------------------------------------------- *)

type arrival =
  | Poisson of { rate_per_s : float }
  | Diurnal of {
      base_per_s : float;
      peak_per_s : float;
      period_ms : float;
      phase_ms : float;
    }

let peak_rate = function
  | Poisson { rate_per_s } -> rate_per_s
  | Diurnal { peak_per_s; _ } -> peak_per_s

let validate_arrival = function
  | Poisson { rate_per_s } ->
      if rate_per_s <= 0.0 then invalid_arg "Openloop: rate_per_s <= 0"
  | Diurnal { base_per_s; peak_per_s; period_ms; _ } ->
      if base_per_s < 0.0 then invalid_arg "Openloop: base_per_s < 0";
      if peak_per_s < base_per_s then
        invalid_arg "Openloop: peak_per_s < base_per_s";
      if peak_per_s <= 0.0 then invalid_arg "Openloop: peak_per_s <= 0";
      if period_ms <= 0.0 then invalid_arg "Openloop: period_ms <= 0"

let rate_at arrival t_ms =
  match arrival with
  | Poisson { rate_per_s } -> rate_per_s
  | Diurnal { base_per_s; peak_per_s; period_ms; phase_ms } ->
      let phase = 2.0 *. Float.pi *. ((t_ms +. phase_ms) /. period_ms) in
      base_per_s +. ((peak_per_s -. base_per_s) *. 0.5 *. (1.0 -. Float.cos phase))

(* Lewis thinning against the peak rate: candidate arrivals are a
   homogeneous Poisson process at [peak]; each is kept with
   probability rate(t)/peak. A plain Poisson process accepts every
   candidate (no thinning draw), so its schedule is exactly the
   exponential-interarrival stream the mean test checks. *)
let schedule arrival ~rng ~duration_ms =
  validate_arrival arrival;
  if duration_ms < 0.0 then invalid_arg "Openloop.schedule: duration < 0";
  let peak = peak_rate arrival in
  let mean_ms = 1000.0 /. peak in
  let rec go acc t =
    let t = t +. Sim.Rng.exponential rng ~mean:mean_ms in
    if t >= duration_ms then List.rev acc
    else
      let keep =
        match arrival with
        | Poisson _ -> true
        | Diurnal _ -> Sim.Rng.float rng 1.0 < rate_at arrival t /. peak
      in
      go (if keep then t :: acc else acc) t
  in
  go [] 0.0

let schedule_digest samples =
  let h =
    List.fold_left
      (fun acc t ->
        Int64.mul (Int64.logxor acc (Int64.bits_of_float t)) 0x100000001b3L)
      0xcbf29ce484222325L samples
  in
  Printf.sprintf "%016Lx" h

(* --- generic drivers --------------------------------------------- *)

type drive_result = { latency : Sim.Stats.t; errors : int }

let drive ~times ~submit () =
  let latency = Sim.Stats.create ~name:"openloop" () in
  let errors = ref 0 in
  let total = List.length times in
  if total = 0 then { latency; errors = 0 }
  else begin
    let completed = ref 0 in
    let all_done = Sim.Engine.Ivar.create () in
    let t0 = Sim.Engine.time () in
    Sim.Engine.spawn_child ~name:"openloop.arrivals" (fun () ->
        List.iteri
          (fun i at ->
            let lag = t0 +. at -. Sim.Engine.time () in
            if lag > 0.0 then Sim.Engine.sleep lag;
            let scheduled = t0 +. at in
            Sim.Engine.spawn_child ~name:"openloop.arrival" (fun () ->
                if not (submit i) then incr errors;
                Sim.Stats.add latency (Sim.Engine.time () -. scheduled);
                incr completed;
                if !completed = total then
                  ignore (Sim.Engine.Ivar.fill_if_empty all_done ())))
          times);
    Sim.Engine.Ivar.read all_done;
    { latency; errors = !errors }
  end

let drive_closed ~n ~submit () =
  let latency = Sim.Stats.create ~name:"closedloop" () in
  let errors = ref 0 in
  for i = 0 to n - 1 do
    let t = Sim.Engine.time () in
    if not (submit i) then incr errors;
    Sim.Stats.add latency (Sim.Engine.time () -. t)
  done;
  { latency; errors = !errors }

(* --- confederation harness --------------------------------------- *)

type ranking = Decayed | Sliding

let decayed_half_life_ms = 300_000.0
let sliding_window_ms = 10_000.0

type flash = { at_ms : float; len_ms : float; fraction : float; rank : int }
type storm = { at_ms : float; every_ms : float; hold_ms : float; count : int }

type config = {
  label : string;
  seed : int;
  clients : int;
  agent_hosts : int;
  legacy_hosts : int;
  legacy_fraction : float;
  ch_fraction : float;
  names : int;
  zipf_s : float;
  steady_k : int;
  arrival : arrival;
  duration_ms : float;
  churn_every_ms : float;
  ranking : ranking;
  hand_codec : bool;
  meta_replicas : int;
  flash : flash option;
  storm : storm option;
  slo_target_ms : float;
  slo_objective : float;
}

type report = {
  config : config;
  arrivals : int;
  errors : int;
  all : Sim.Stats.t;
  steady : Sim.Stats.t;
  flashed : Sim.Stats.t;
  steady_compliance : float;
  bind_qps : float;
  meta_qps : float;
  meta_replica_qps : float;
  wire_mb : float;
  sim_events : int;
  prefetch_seeded : int;
  prefetch_hits : int;
  digest : string;
}

let validate cfg =
  validate_arrival cfg.arrival;
  if cfg.clients <= 0 then invalid_arg "Openloop: clients <= 0";
  if cfg.agent_hosts <= 0 then invalid_arg "Openloop: agent_hosts <= 0";
  if cfg.legacy_hosts <= 0 then invalid_arg "Openloop: legacy_hosts <= 0";
  if cfg.legacy_fraction < 0.0 || cfg.legacy_fraction > 1.0 then
    invalid_arg "Openloop: legacy_fraction outside [0,1]";
  if cfg.ch_fraction < 0.0 || cfg.ch_fraction +. cfg.legacy_fraction > 1.0 then
    invalid_arg "Openloop: ch_fraction malformed";
  if cfg.names < 2 then invalid_arg "Openloop: names < 2";
  if cfg.steady_k <= 0 || cfg.steady_k >= cfg.names then
    invalid_arg "Openloop: steady_k outside (0, names)";
  if cfg.duration_ms <= 0.0 then invalid_arg "Openloop: duration <= 0";
  if cfg.churn_every_ms <= 0.0 then invalid_arg "Openloop: churn <= 0";
  if cfg.meta_replicas < 0 then invalid_arg "Openloop: meta_replicas < 0";
  (match cfg.flash with
  | None -> ()
  | Some f ->
      if f.fraction < 0.0 || f.fraction > 1.0 then
        invalid_arg "Openloop: flash fraction outside [0,1]";
      if f.rank < cfg.steady_k || f.rank >= cfg.names then
        invalid_arg "Openloop: flash rank must be outside the steady set");
  match cfg.storm with
  | None -> ()
  | Some s ->
      if s.count < 0 then invalid_arg "Openloop: storm count < 0";
      if s.count > 0 && (s.every_ms <= 0.0 || s.hold_ms <= 0.0) then
        invalid_arg "Openloop: storm period/hold <= 0"

(* One precomputed arrival: everything random is drawn up front so the
   measured run's choices cannot depend on fiber interleaving. *)
type path = Agent_path of int | Legacy_path of int

type entry = {
  at : float;
  epath : path;
  hname : Hns.Hns_name.t;
  is_steady : bool;
  is_flash : bool;
}

let run cfg =
  validate cfg;
  let root = Sim.Rng.create ~seed:(Int64.of_int cfg.seed) in
  let rng_sched = Sim.Rng.split root in
  let rng_perm = Sim.Rng.split root in
  let rng_mix = Sim.Rng.split root in
  let hot_ranking =
    match cfg.ranking with
    | Decayed -> Dns.Hotrank.Decayed { half_life_ms = decayed_half_life_ms }
    | Sliding -> Dns.Hotrank.Sliding_count { window_ms = sliding_window_ms }
  in
  (* Linked host-address NSM caches expire on this period, so every
     fleet host re-asks the public BIND for a name it keeps resolving
     — the sighting stream the hot tracker ranks. *)
  let nsm_cache_ttl_ms = 2_000.0 in
  let scn =
    S.build ~cache_mode:Hns.Cache.Demarshalled ~extra_hosts:cfg.names
      ~bundle:true ~hand_codec:cfg.hand_codec ~prefetch:true ~hot_ranking
      ~prefetch_k:(cfg.steady_k + 1) ~nsm_cache_ttl_ms
      ~meta_replicas:cfg.meta_replicas ()
  in
  (* Zipf rank -> zone name, through a seeded permutation so the
     popular heads are not alphabetically first (Name.compare
     tie-breaks must not be able to rescue a bad ranking). *)
  let host_names = Array.of_list (Namegen.hosts ~count:cfg.names ~zone:scn.zone) in
  let perm = Array.init cfg.names (fun i -> i) in
  Sim.Rng.shuffle rng_perm perm;
  let name_of_rank r =
    Hns.Hns_name.make ~context:scn.bind_context ~name:host_names.(perm.(r))
  in
  let ch_name = Hns.Hns_name.make ~context:scn.ch_context ~name:"dandelion" in
  let zipf = Zipf.create ~n:cfg.names ~s:cfg.zipf_s in
  (* The fleets. Clients are a population of ids mapped onto hosts:
     each arrival belongs to one of [clients] simulated clients, whose
     host (and therefore shared agent or legacy resolver) is fixed by
     its id. *)
  let attach name =
    Transport.Netstack.attach scn.net (Sim.Topology.add_host scn.topo name)
  in
  let agents =
    Array.init cfg.agent_hosts (fun i ->
        let stack = attach (Printf.sprintf "lharn-a%02d" i) in
        let hns =
          S.new_hns ~cache_mode:Hns.Cache.Demarshalled ~nsm_cache_ttl_ms scn
            ~on:stack
        in
        let agent =
          Hns.Agent.create hns ~service_overhead_ms:C.agent_service_overhead_ms
            ()
        in
        (stack, agent, Hns.Agent.binding agent))
  in
  let legacy =
    Array.init cfg.legacy_hosts (fun i ->
        let stack = attach (Printf.sprintf "lharn-l%02d" i) in
        (* The legacy pool keeps the generated stubs regardless of
           [hand_codec]: it models the unconverted 1987 clients, and
           mixed codecs on one wire is exactly the heterogeneity the
           byte-identical hand encoding has to survive. *)
        ( stack,
          S.new_hns ~enable_bundle:false ~hand_codec:false ~nsm_cache_ttl_ms scn
            ~on:stack ))
  in
  (* The schedule, then the full arrival plan. *)
  let times = schedule cfg.arrival ~rng:rng_sched ~duration_ms:cfg.duration_ms in
  let digest = schedule_digest times in
  let flash_active at =
    match cfg.flash with
    | None -> false
    | Some f ->
        at >= f.at_ms && at < f.at_ms +. f.len_ms
        && Sim.Rng.float rng_mix 1.0 < f.fraction
  in
  let plan =
    Array.of_list
      (List.map
         (fun at ->
           let client = Sim.Rng.int rng_mix cfg.clients in
           let p = Sim.Rng.float rng_mix 1.0 in
           let epath =
             if p < cfg.legacy_fraction then
               Legacy_path (client mod cfg.legacy_hosts)
             else Agent_path (client mod cfg.agent_hosts)
           in
           let is_ch = Sim.Rng.float rng_mix 1.0 < cfg.ch_fraction in
           let rank = Zipf.sample zipf rng_mix in
           if flash_active at then
             let rank = (Option.get cfg.flash).rank in
             { at; epath; hname = name_of_rank rank; is_steady = false;
               is_flash = true }
           else if is_ch then
             { at; epath; hname = ch_name; is_steady = false; is_flash = false }
           else
             let is_flash =
               match cfg.flash with Some f -> rank = f.rank | None -> false
             in
             let is_steady =
               (not is_flash) && rank < cfg.steady_k
               && match epath with Agent_path _ -> true | Legacy_path _ -> false
             in
             { at; epath; hname = name_of_rank rank; is_steady; is_flash })
         times)
  in
  let steady = Sim.Stats.create ~name:"steady" () in
  let flashed = Sim.Stats.create ~name:"flash" () in
  let slo =
    let slug =
      String.map (fun c -> if c = '.' then '-' else c) cfg.label
    in
    Obs.Slo.get_or_create ~target_ms:cfg.slo_target_ms
      ~objective:cfg.slo_objective ("load-" ^ slug)
  in
  let debug = Sys.getenv_opt "OPENLOOP_DEBUG" <> None in
  let error_kinds : (string, int) Hashtbl.t = Hashtbl.create 7 in
  let note_error e =
    if debug then
      let k = Hns.Errors.to_string e in
      Hashtbl.replace error_kinds k
        (1 + Option.value ~default:0 (Hashtbl.find_opt error_kinds k))
  in
  let resolve_legacy hns hname =
    match
      Hns.Client.resolve hns ~query_class:Hns.Query_class.host_address
        ~payload_ty:Hns.Nsm_intf.host_address_payload_ty hname
    with
    | Ok (Some _) -> true
    | Ok None -> false
    | Error e ->
        note_error e;
        false
  in
  let before_bind = ref 0 and before_meta = ref 0 and before_bytes = ref 0 in
  let bind_q = ref 0 and meta_q = ref 0 and wire_bytes = ref 0 in
  let before_replica = ref 0 and replica_q = ref 0 in
  let replica_queries () =
    List.fold_left
      (fun acc srv -> acc + Dns.Server.queries_served srv)
      0 scn.S.meta_replica_servers
  in
  let result =
    S.in_sim scn (fun () ->
        (* Replica fleet up first: the warmup's bundle fetches and
           every routed read below go through it. Detached again before
           this window closes so the engine can drain. *)
        let meta_secs = S.attach_meta_replicas scn in
        Array.iter (fun (_, a, _) -> Hns.Agent.start a) agents;
        (* Deterministic warmup: every fleet host touches the steady
           set (and the Clearinghouse name) once, seeding mapping
           caches, NSM caches, the hot tracker, and — through each
           agent's bundle fetch — the prefetch hints. *)
        Array.iter
          (fun (stack, _, binding) ->
            for r = 0 to cfg.steady_k - 1 do
              ignore
                (Hns.Agent.remote_resolve_addr stack ~agent:binding
                   (name_of_rank r))
            done;
            ignore (Hns.Agent.remote_resolve_addr stack ~agent:binding ch_name))
          agents;
        Array.iter
          (fun (_, hns) ->
            for r = 0 to cfg.steady_k - 1 do
              ignore (resolve_legacy hns (name_of_rank r))
            done;
            ignore (resolve_legacy hns ch_name))
          legacy;
        Sim.Engine.sleep 2_000.0;
        (if Sys.getenv_opt "OPENLOOP_DEBUG" <> None then
           let group = Dns.Name.to_string (Dns.Zone.origin scn.public_zone) in
           Sim.Engine.spawn_child ~name:"openloop.debug" (fun () ->
               for _ = 1 to 6 do
                 Printf.eprintf "t=%.0f top:" (Sim.Engine.time ());
                 List.iter (fun (n, s) ->
                     Printf.eprintf " %s=%.1f" (Dns.Name.to_string n) s)
                   (Dns.Server.hot_ranked scn.public_bind ~group ~k:8 ());
                 prerr_newline ();
                 Sim.Engine.sleep 12_000.0
               done));
        let t0 = Sim.Engine.time () in
        let t_end = t0 +. cfg.duration_ms in
        (* Agent cache churn, staggered across the fleet: flush the
           shared cache, then refetch both contexts' bundles so the
           freshly-ranked prefetch hints land before clients ask. *)
        Array.iteri
          (fun i (_, agent, _) ->
            let hns = Hns.Agent.hns agent in
            let first =
              t0 +. (cfg.churn_every_ms *. (float_of_int (i + 1)
                     /. float_of_int cfg.agent_hosts))
            in
            Sim.Engine.spawn_child ~name:"openloop.churn" (fun () ->
                let rec loop next =
                  if next < t_end then begin
                    let lag = next -. Sim.Engine.time () in
                    if lag > 0.0 then Sim.Engine.sleep lag;
                    Hns.Client.flush_cache hns;
                    ignore
                      (Hns.Client.find_nsm hns ~context:scn.bind_context
                         ~query_class:Hns.Query_class.host_address);
                    ignore
                      (Hns.Client.find_nsm hns ~context:scn.ch_context
                         ~query_class:Hns.Query_class.host_address);
                    loop (next +. cfg.churn_every_ms)
                  end
                in
                loop first))
          agents;
        (match cfg.storm with
        | None | Some { count = 0; _ } -> ()
        | Some s ->
            let fleet =
              Array.to_list
                (Array.append
                   (Array.mapi (fun i _ -> Printf.sprintf "lharn-a%02d" i)
                      agents)
                   (Array.mapi (fun i _ -> Printf.sprintf "lharn-l%02d" i)
                      legacy))
            in
            let faults =
              List.init s.count (fun i ->
                  let at = t0 +. s.at_ms +. (float_of_int i *. s.every_ms) in
                  (* Cut the fleet off from the context's NSM — the one
                     remote hop every un-cached resolve depends on.
                     Hint-warmed agent caches ride the hold out; legacy
                     always-remote traffic eats the failure. *)
                  Chaos.Plan.partition ~group_a:[ "niue" ] ~group_b:fleet ~at
                    ~heal_at:(at +. s.hold_ms))
            in
            ignore (Chaos.Injector.install faults scn.net));
        before_bind := Dns.Server.queries_served scn.public_bind;
        before_meta := Dns.Server.queries_served scn.meta_bind;
        before_replica := replica_queries ();
        before_bytes := Transport.Netstack.bytes_sent scn.net;
        let submit i =
          let e = plan.(i) in
          let scheduled = t0 +. e.at in
          let ok =
            match e.epath with
            | Agent_path h -> (
                let stack, _, binding = agents.(h) in
                match
                  Hns.Agent.remote_resolve_addr stack ~agent:binding e.hname
                with
                | Ok _ -> true
                | Error err ->
                    note_error err;
                    false)
            | Legacy_path h -> resolve_legacy (snd legacy.(h)) e.hname
          in
          let lat = Sim.Engine.time () -. scheduled in
          if e.is_steady then Obs.Slo.observe slo ~ok lat;
          if ok then begin
            if e.is_steady then Sim.Stats.add steady lat;
            if e.is_flash then Sim.Stats.add flashed lat
          end;
          ok
        in
        let result = drive ~times ~submit () in
        if debug then
          Hashtbl.iter
            (fun k n -> Printf.eprintf "error[%s] x%d\n" k n)
            error_kinds;
        bind_q := Dns.Server.queries_served scn.public_bind - !before_bind;
        meta_q := Dns.Server.queries_served scn.meta_bind - !before_meta;
        replica_q := replica_queries () - !before_replica;
        wire_bytes := Transport.Netstack.bytes_sent scn.net - !before_bytes;
        S.detach_meta_replicas scn meta_secs;
        (* The agents are left running: straggler duplicates from
           timed-out callers may still be in flight, and a stopped
           server's socket would turn their replies into crashes. The
           engine quiesces fine around a blocked recv. *)
        result)
  in
  let duration_s = cfg.duration_ms /. 1000.0 in
  let compliance =
    match Sim.Stats.samples steady with
    | [] -> 1.0
    | samples ->
        let ok =
          List.length (List.filter (fun l -> l <= cfg.slo_target_ms) samples)
        in
        float_of_int ok /. float_of_int (List.length samples)
  in
  {
    config = cfg;
    arrivals = Array.length plan;
    errors = result.errors;
    all = result.latency;
    steady;
    flashed;
    steady_compliance = compliance;
    bind_qps = float_of_int !bind_q /. duration_s;
    meta_qps = float_of_int !meta_q /. duration_s;
    meta_replica_qps =
      float_of_int !replica_q
      /. float_of_int (max 1 cfg.meta_replicas)
      /. duration_s;
    wire_mb = float_of_int !wire_bytes /. (1024.0 *. 1024.0);
    sim_events = Sim.Engine.events_executed scn.engine;
    prefetch_seeded =
      Array.fold_left
        (fun acc (_, a, _) -> acc + Hns.Agent.prefetch_seeded a)
        0 agents;
    prefetch_hits =
      Array.fold_left
        (fun acc (_, a, _) -> acc + Hns.Agent.prefetch_hits a)
        0 agents;
    digest;
  }

(* --- presets ------------------------------------------------------ *)

let smoke ?(ranking = Decayed) ?label () =
  let label =
    match label with
    | Some l -> l
    | None -> ( match ranking with Decayed -> "smoke" | Sliding -> "smoke_naive")
  in
  {
    label;
    seed = 11;
    clients = 20_000;
    agent_hosts = 4;
    legacy_hosts = 4;
    legacy_fraction = 0.2;
    ch_fraction = 0.05;
    names = 96;
    zipf_s = 1.25;
    steady_k = 4;
    arrival = Poisson { rate_per_s = 14.0 };
    duration_ms = 90_000.0;
    (* Fleet-wide flush spacing is churn/agents = 11.25 s — just past
       the naive ranking's 10 s window, so hint keep-alive renewals
       have aged out of a sliding count (but not out of the decayed
       mass) by the time the next bundle is ranked. *)
    churn_every_ms = 45_000.0;
    ranking;
    hand_codec = true;
    meta_replicas = 2;
    flash = Some { at_ms = 36_000.0; len_ms = 18_000.0; fraction = 0.9; rank = 17 };
    storm = None;
    slo_target_ms = 150.0;
    slo_objective = 0.98;
  }

let bench_base ~label ~ranking ~arrival ~flash ~storm =
  {
    label;
    seed = 42;
    clients = 1_000_000;
    agent_hosts = 8;
    legacy_hosts = 6;
    legacy_fraction = 0.15;
    ch_fraction = 0.05;
    names = 128;
    zipf_s = 1.35;
    steady_k = 4;
    arrival;
    duration_ms = 360_000.0;
    churn_every_ms = 90_000.0;
    ranking;
    hand_codec = true;
    meta_replicas = 3;
    flash;
    storm;
    slo_target_ms = 150.0;
    slo_objective = 0.98;
  }

let bench_flash = Some { at_ms = 180_000.0; len_ms = 90_000.0; fraction = 0.95; rank = 48 }

let bench_configs () =
  [
    bench_base ~label:"poisson" ~ranking:Decayed
      ~arrival:(Poisson { rate_per_s = 12.0 })
      ~flash:None ~storm:None;
    bench_base ~label:"diurnal" ~ranking:Decayed
      ~arrival:
        (Diurnal
           {
             base_per_s = 4.0;
             peak_per_s = 16.0;
             period_ms = 180_000.0;
             phase_ms = 0.0;
           })
      ~flash:None ~storm:None;
    bench_base ~label:"flash.decayed" ~ranking:Decayed
      ~arrival:(Poisson { rate_per_s = 12.0 })
      ~flash:bench_flash ~storm:None;
    bench_base ~label:"flash.sliding" ~ranking:Sliding
      ~arrival:(Poisson { rate_per_s = 12.0 })
      ~flash:bench_flash ~storm:None;
    bench_base ~label:"storm" ~ranking:Decayed
      ~arrival:(Poisson { rate_per_s = 12.0 })
      ~flash:None
      (* Offset from the 90 s churn grid so holds don't land exactly on
         an agent's flush-and-refetch instant. *)
      ~storm:(Some { at_ms = 100_000.0; every_ms = 90_000.0; hold_ms = 8_000.0; count = 3 });
  ]

(* --- reporting ---------------------------------------------------- *)

let pct stats p =
  if Sim.Stats.count stats = 0 then 0.0 else Sim.Stats.percentile stats p

let pp_stats_line ppf (what, stats) =
  Format.fprintf ppf "    %-10s n=%-6d p50 %7.1f  p99 %8.1f  p999 %8.1f ms@."
    what (Sim.Stats.count stats) (pct stats 50.0) (pct stats 99.0)
    (pct stats 99.9)

let pp_report ppf r =
  let c = r.config in
  let ranking = match c.ranking with Decayed -> "decayed" | Sliding -> "sliding" in
  Format.fprintf ppf
    "  %s: %d clients over %d agent + %d legacy hosts, %s ranking@.  \
     %d arrivals (%d errors), schedule %s@."
    c.label c.clients c.agent_hosts c.legacy_hosts ranking r.arrivals r.errors
    r.digest;
  pp_stats_line ppf ("all", r.all);
  pp_stats_line ppf ("steady", r.steady);
  if Sim.Stats.count r.flashed > 0 then pp_stats_line ppf ("flash", r.flashed);
  Format.fprintf ppf
    "    steady SLO(%g ms): %.4f compliant (objective %g)@.    upstream: \
     BIND %.1f q/s, meta primary %.1f q/s, %d replicas x %.1f q/s, wire \
     %.2f MB, %d sim events@.    prefetch: %d hints seeded, %d hits@."
    c.slo_target_ms r.steady_compliance c.slo_objective r.bind_qps r.meta_qps
    c.meta_replicas r.meta_replica_qps r.wire_mb r.sim_events r.prefetch_seeded
    r.prefetch_hits

let one_sample name v =
  let s = Sim.Stats.create ~name () in
  Sim.Stats.add s v;
  s

let report_rows r =
  let base = Printf.sprintf "loadharness.%s" r.config.label in
  let duration_s = r.config.duration_ms /. 1000.0 in
  [ (base ^ ".resolve_ms", r.all); (base ^ ".steady_ms", r.steady) ]
  @ (if Sim.Stats.count r.flashed > 0 then [ (base ^ ".flash_ms", r.flashed) ]
     else [])
  @ [
      (base ^ ".bind_qps", one_sample (base ^ ".bind_qps") r.bind_qps);
      (base ^ ".meta_qps", one_sample (base ^ ".meta_qps") r.meta_qps);
      ( base ^ ".meta_replica_qps",
        one_sample (base ^ ".meta_replica_qps") r.meta_replica_qps );
      ( base ^ ".wire_kb_per_s",
        one_sample
          (base ^ ".wire_kb_per_s")
          (r.wire_mb *. 1024.0 /. duration_s) );
    ]
