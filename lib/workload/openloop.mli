(** Open-loop load harness: a million-client confederation.

    Closed-loop drivers (every bench loop so far) wait for each reply
    before issuing the next request, so a slow server quietly slows
    the {e offered} load and hides its own queueing delay. An
    open-loop driver fixes the arrival process instead: requests
    arrive on a schedule drawn up front from a seeded RNG, each in its
    own fiber, whether or not earlier ones have completed — latency is
    measured from the {e scheduled} arrival instant, so queueing delay
    is part of the number (the coordinated-omission-free view).

    [run] simulates a client population of [clients] (default one
    million) spread over a fleet of agent-equipped hosts plus a legacy
    pool of bundle-less direct resolvers, driving Zipf-distributed
    resolves through the {!Scenario} confederation entirely on the
    virtual clock: Poisson or diurnal arrivals, an optional flash
    crowd concentrated on one name, optional partition storms from
    {!Chaos}, and periodic agent cache churn (the event that consumes
    the meta-BIND's prefetch hints). Everything is deterministic in
    [seed]: same seed, byte-identical report. *)

(** {1 Arrival processes} *)

type arrival =
  | Poisson of { rate_per_s : float }
      (** Memoryless arrivals: exponential interarrivals with mean
          [1/rate_per_s]. *)
  | Diurnal of {
      base_per_s : float;
      peak_per_s : float;
      period_ms : float;
      phase_ms : float;
    }
      (** Sinusoidal day/night modulation on the {e virtual} clock:
          rate(t) = base + (peak - base) * (1 - cos 2pi(t+phase)/period)/2,
          sampled by Lewis thinning against [peak_per_s]. [phase_ms]
          = 0 starts at the trough. *)

(** Instantaneous rate (per second) at virtual offset [t_ms]. *)
val rate_at : arrival -> float -> float

(** Draw a full arrival schedule for [duration_ms] of virtual time:
    strictly increasing offsets in milliseconds from the schedule
    origin. Pure function of ([arrival], [rng]); no simulation
    needed. *)
val schedule : arrival -> rng:Sim.Rng.t -> duration_ms:float -> float list

(** FNV-1a over the raw float bits of a schedule (or any sample
    list) — the determinism fingerprint tests compare. *)
val schedule_digest : float list -> string

(** {1 Generic drivers}

    Both must run inside a simulated process ({!Scenario.in_sim}). *)

type drive_result = { latency : Sim.Stats.t; errors : int }

(** Open-loop: spawn a fiber per arrival at its scheduled offset
    (relative to the virtual time at the call); [submit i] performs
    arrival [i] and reports success. Latency samples run from the
    scheduled arrival to completion — service time {e plus} queueing
    delay. Returns when every arrival has completed. *)
val drive : times:float list -> submit:(int -> bool) -> unit -> drive_result

(** Closed-loop comparator: [n] sequential submissions, each latency
    measured from its own start — queueing a closed loop cannot see. *)
val drive_closed : n:int -> submit:(int -> bool) -> unit -> drive_result

(** {1 The confederation harness} *)

type ranking =
  | Decayed  (** {!Dns.Hotrank.Decayed}, half-life {!decayed_half_life_ms}. *)
  | Sliding
      (** {!Dns.Hotrank.Sliding_count} over {!sliding_window_ms} — the
          naive recency-windowed baseline the A/B bench measures. *)

val decayed_half_life_ms : float (* 300_000. *)
val sliding_window_ms : float (* 10_000. *)

(** A flash crowd: between [at_ms] and [at_ms +. len_ms] (offsets into
    the measured window), [fraction] of arrivals are redirected to the
    single Zipf rank [rank] (a mid-tail name outside the steady
    set). *)
type flash = { at_ms : float; len_ms : float; fraction : float; rank : int }

(** Partition storms: [count] partitions isolating the public BIND
    from every harness host, starting at [at_ms], one every
    [every_ms], each healing after [hold_ms]. *)
type storm = { at_ms : float; every_ms : float; hold_ms : float; count : int }

type config = {
  label : string;  (** bench row prefix: [loadharness.<label>.*] *)
  seed : int;
  clients : int;  (** simulated client population (ids, not fibers) *)
  agent_hosts : int;  (** hosts running a shared v2 agent *)
  legacy_hosts : int;  (** bundle-less direct-resolver hosts *)
  legacy_fraction : float;  (** arrivals routed to the legacy pool *)
  ch_fraction : float;  (** arrivals resolving the Clearinghouse name *)
  names : int;  (** synthetic host population in the public zone *)
  zipf_s : float;
  steady_k : int;  (** working-set head: ranks [0, steady_k) *)
  arrival : arrival;
  duration_ms : float;  (** measured window (virtual) *)
  churn_every_ms : float;
      (** each agent flushes its shared cache and refetches the bundle
          (reseeding prefetch hints) on this period, staggered *)
  ranking : ranking;
  hand_codec : bool;
      (** agent-fleet clients use the hand-marshalled hot codec
          ({!Calib.hand_cost}); the legacy pool always keeps the
          generated stubs — heterogeneity is the point *)
  meta_replicas : int;
      (** meta-zone replica servers chained under the primary; every
          fleet client routes its meta reads over them
          ({!Scenario.new_replica_set}). 0 = the single-primary
          deployment *)
  flash : flash option;
  storm : storm option;
  slo_target_ms : float;  (** steady-resolve SLO target *)
  slo_objective : float;
}

type report = {
  config : config;
  arrivals : int;
  errors : int;
  all : Sim.Stats.t;  (** every measured resolve *)
  steady : Sim.Stats.t;
      (** agent-path resolves of steady-set names — the SLO population *)
  flashed : Sim.Stats.t;  (** resolves of the flash-crowd name *)
  steady_compliance : float;
      (** fraction of steady samples within [slo_target_ms] (computed
          from the samples, so it is deterministic per run) *)
  bind_qps : float;  (** public BIND queries/s over the window *)
  meta_qps : float;  (** meta-BIND {e primary} queries/s over the window *)
  meta_replica_qps : float;
      (** mean queries/s per meta replica over the window; 0 when
          [meta_replicas = 0] *)
  wire_mb : float;  (** bytes put on the wire during the window *)
  sim_events : int;  (** engine events executed, total *)
  prefetch_seeded : int;  (** hint rows the agent fleet seeded *)
  prefetch_hits : int;  (** resolves answered straight from a hint *)
  digest : string;  (** {!schedule_digest} of the arrival schedule *)
}

(** Build the scenario, attach the fleets, warm the caches, and drive
    the schedule. Deterministic in [config]. *)
val run : config -> report

(** Small-N preset for [make check] / CI smoke (a few thousand
    clients, one virtual minute). *)
val smoke : ?ranking:ranking -> ?label:string -> unit -> config

(** The bench suite: poisson + diurnal baselines, the
    flash.decayed/flash.sliding A/B pair at a million clients, and a
    partition-storm run. *)
val bench_configs : unit -> config list

val pp_report : Format.formatter -> report -> unit

(** Rows for {!Obs.Export.write_bench_json}:
    [loadharness.<label>.{resolve,steady,flash}_ms] plus
    single-sample [bind_qps] / [meta_qps] / [meta_replica_qps] /
    [wire_kb_per_s] rows. *)
val report_rows : report -> (string * Sim.Stats.t) list
