type t = {
  engine : Sim.Engine.t;
  topo : Sim.Topology.t;
  net : Transport.Netstack.t;
  client_stack : Transport.Netstack.stack;
  agent_stack : Transport.Netstack.stack;
  nsm_stack : Transport.Netstack.stack;
  meta_stack : Transport.Netstack.stack;
  bind_stack : Transport.Netstack.stack;
  ch_stack : Transport.Netstack.stack;
  service_stack : Transport.Netstack.stack;
  meta_bind : Dns.Server.t;
  meta_zone : Dns.Zone.t;
  meta_replica_servers : Dns.Server.t list;
  public_bind : Dns.Server.t;
  public_zone : Dns.Zone.t;
  ch : Clearinghouse.Ch_server.t;
  portmap : Rpc.Portmap.t;
  credentials : Clearinghouse.Ch_proto.credentials;
  zone : string;
  bind_context : string;
  ch_context : string;
  service_name : string;
  service_host : string;
  target_prog : int;
  target_vers : int;
  expected_sun_binding : Hrpc.Binding.t;
  courier_service_name : string;
  expected_courier_binding : Hrpc.Binding.t;
  ch_domain : string;
  ch_org : string;
  nsm_binding_bind : string;
  nsm_hostaddr_bind : string;
  nsm_binding_ch : string;
  nsm_hostaddr_ch : string;
  remote_binding_nsm_bind : Nsm.Binding_nsm_bind.t;
  remote_hostaddr_nsm_bind : Nsm.Hostaddr_nsm_bind.t;
  remote_binding_nsm_ch : Nsm.Binding_nsm_ch.t;
  remote_hostaddr_nsm_ch : Nsm.Hostaddr_nsm_ch.t;
  localfile : Baseline.Localfile.t;
  rereg : Baseline.Rereg_ch.t;
  cache_mode : Hns.Cache.mode;
  bundle_enabled : bool;
  hand_codec_enabled : bool;
  alt_service_names : string list;
}

let in_sim_engine engine f =
  let result = ref None in
  Sim.Engine.spawn engine ~name:"experiment" (fun () -> result := Some (f ()));
  Sim.Engine.run engine;
  match !result with
  | Some v -> v
  | None -> failwith "Scenario.in_sim: experiment process did not complete"

let in_sim t f = in_sim_engine t.engine f

let timed f =
  let t0 = Sim.Engine.time () in
  let v = f () in
  (v, Sim.Engine.time () -. t0)

let new_cache_mode ?staleness_budget_ms ?hand_cost mode () =
  Hns.Cache.create ~mode ~generated_cost:Calib.generated_cost ?hand_cost
    ~hit_overhead_ms:Calib.cache_hit_overhead_ms
    ~hit_per_node_ms:Calib.cache_hit_per_node_ms
    ~insert_overhead_ms:Calib.cache_insert_ms ?staleness_budget_ms ()

let new_nsm_cache_mode mode () =
  Hns.Cache.create ~mode ~generated_cost:Calib.generated_cost
    ~hit_overhead_ms:Calib.nsm_cache_hit_overhead_ms
    ~hit_per_node_ms:Calib.cache_hit_per_node_ms
    ~insert_overhead_ms:Calib.cache_insert_ms ()

let new_cache t () = new_cache_mode t.cache_mode ()
let new_nsm_cache t () = new_nsm_cache_mode t.cache_mode ()

let meta_addr t = Dns.Server.addr t.meta_bind
let bind_addr t = Dns.Server.addr t.public_bind
let ch_addr t = Clearinghouse.Ch_server.addr t.ch

(* Start the replica fleet and chain it under the meta primary: each
   replica pulls the meta zone by IXFR and gets NOTIFYed on every
   serial advance. Must run in-sim (the initial transfer is
   synchronous). Detach every returned secondary before the driving
   window closes, or the poll backstops keep the engine from ever
   draining. *)
let attach_meta_replicas t =
  List.map
    (fun srv ->
      Dns.Server.start srv;
      let sec =
        Dns.Secondary.attach srv ~primary:(meta_addr t)
          ~zone:Hns.Meta_schema.zone_origin ~refresh_ms:60_000.0
          ~mode:Dns.Secondary.Ixfr ()
      in
      Dns.Server.register_notify t.meta_bind (Dns.Server.addr srv);
      sec)
    t.meta_replica_servers

let detach_meta_replicas t secs =
  List.iter Dns.Secondary.detach secs;
  List.iter
    (fun srv -> Dns.Server.unregister_notify t.meta_bind (Dns.Server.addr srv))
    t.meta_replica_servers

(* Per-client routing view over the replica fleet; [None] when the
   scenario runs unreplicated, so plumbing it through is always safe. *)
let new_replica_set t ~on =
  match t.meta_replica_servers with
  | [] -> None
  | servers ->
      Some
        (Dns.Replica_set.create on ~zone:Hns.Meta_schema.zone_origin
           ~primary:(meta_addr t)
           ~replicas:(List.map Dns.Server.addr servers)
           ())

let new_hns_raw ?staleness_budget_ms ?rpc_policy ?enable_bundle ?negative_ttl_ms
    ?nsm_cache_ttl_ms ?(hand_codec = false) ?replica_set ~cache_mode
    ~meta_server ~bind_server ~ch_server ~credentials ~ch_domain ~ch_org
    ~nsm_hostaddr_bind ~nsm_hostaddr_ch ~on () =
  (* When the hand codec is on, both the client (request/record codecs)
     and its cache (stored-form demarshalling) get the calibrated hand
     cost model; Generic_marshal stays the fallback for cold shapes. *)
  let hand_cost = if hand_codec then Some Calib.hand_cost else None in
  let cache = new_cache_mode ?staleness_budget_ms ?hand_cost cache_mode () in
  let hns =
    Hns.Client.create on ~meta_server ?replica_set ~cache
      ~generated_cost:Calib.generated_cost
      ?hand_codec:hand_cost
      ?hand_preload_record_ms:
        (if hand_codec then Some Calib.hand_preload_record_ms else None)
      ~preload_record_ms:Calib.preload_record_ms
      ~mapping_overhead_ms:Calib.hns_mapping_overhead_ms ?enable_bundle
      ?negative_ttl_ms ?rpc_policy ()
  in
  let ha_bind =
    Nsm.Hostaddr_nsm_bind.create on ~bind_server
      ~cache:(new_nsm_cache_mode cache_mode ())
      ?cache_ttl_ms:nsm_cache_ttl_ms ~per_query_ms:Calib.nsm_per_query_ms ()
  in
  let ha_ch =
    Nsm.Hostaddr_nsm_ch.create on ~ch_server ~credentials ~domain:ch_domain
      ~org:ch_org
      ~cache:(new_nsm_cache_mode cache_mode ())
      ?cache_ttl_ms:nsm_cache_ttl_ms ~per_query_ms:Calib.nsm_per_query_ms ()
  in
  Hns.Client.link_hostaddr_nsm hns ~name:nsm_hostaddr_bind
    (Nsm.Hostaddr_nsm_bind.impl ha_bind);
  Hns.Client.link_hostaddr_nsm hns ~name:nsm_hostaddr_ch
    (Nsm.Hostaddr_nsm_ch.impl ha_ch);
  hns

let new_hns ?staleness_budget_ms ?rpc_policy ?enable_bundle ?negative_ttl_ms
    ?nsm_cache_ttl_ms ?cache_mode ?hand_codec t ~on =
  (* The scenario's bundle setting is the default: a bundle-enabled
     testbed hands out bundle-enabled clients unless overridden.
     Same deal for the hand codec. *)
  let enable_bundle =
    match enable_bundle with Some b -> b | None -> t.bundle_enabled
  in
  let hand_codec =
    match hand_codec with Some h -> h | None -> t.hand_codec_enabled
  in
  let cache_mode = Option.value ~default:t.cache_mode cache_mode in
  new_hns_raw ?staleness_budget_ms ?rpc_policy ~enable_bundle ?negative_ttl_ms
    ?nsm_cache_ttl_ms ~hand_codec
    ?replica_set:(new_replica_set t ~on)
    ~cache_mode ~meta_server:(meta_addr t)
    ~bind_server:(bind_addr t) ~ch_server:(ch_addr t)
    ~credentials:t.credentials ~ch_domain:t.ch_domain ~ch_org:t.ch_org
    ~nsm_hostaddr_bind:t.nsm_hostaddr_bind ~nsm_hostaddr_ch:t.nsm_hostaddr_ch ~on
    ()

(* Every service name the binding NSM should answer for: the canonical
   import target plus the varied-length alternates (used by the bench
   harness to de-degenerate per-iteration samples). All map to the
   same Sun RPC program. *)
let service_directory ~service_name ~alt_service_names ~target_prog ~target_vers
    =
  (service_name, (target_prog, target_vers))
  :: List.map (fun s -> (s, (target_prog, target_vers))) alt_service_names

(* [alternates] (default off) also serves the varied-length alternate
   service names — the import bench turns it on; the default keeps the
   canonical single-service NSM (e.g. for preload warm counts). *)
let new_binding_nsm_bind ?(alternates = false) t ~on =
  let services =
    if alternates then
      service_directory ~service_name:t.service_name
        ~alt_service_names:t.alt_service_names ~target_prog:t.target_prog
        ~target_vers:t.target_vers
    else [ (t.service_name, (t.target_prog, t.target_vers)) ]
  in
  Nsm.Binding_nsm_bind.create on ~bind_server:(bind_addr t) ~services
    ~cache:(new_nsm_cache t ()) ~per_query_ms:Calib.nsm_per_query_ms ()

let new_binding_nsm_ch t ~on =
  Nsm.Binding_nsm_ch.create on ~ch_server:(ch_addr t) ~credentials:t.credentials
    ~domain:t.ch_domain ~org:t.ch_org ~cache:(new_nsm_cache t ())
    ~per_query_ms:Calib.nsm_per_query_ms ()

let build ?(cache_mode = Hns.Cache.Marshalled) ?(extra_hosts = 16)
    ?(bundle = false) ?(hand_codec = false) ?(prefetch = false) ?hot_ranking
    ?(prefetch_k = 8) ?nsm_cache_ttl_ms ?(meta_replicas = 0) () =
  let engine = Sim.Engine.create () in
  let topo =
    Sim.Topology.create ~default_latency_ms:Calib.ethernet_latency_ms
      ~default_per_byte_ms:Calib.ethernet_per_byte_ms ~loopback_ms:Calib.loopback_ms
      ()
  in
  let net = Transport.Netstack.create engine topo in
  let attach name = Transport.Netstack.attach net (Sim.Topology.add_host topo name) in
  let client_stack = attach "tonga" in
  let agent_stack = attach "rarotonga" in
  let nsm_stack = attach "niue" in
  let meta_stack = attach "fiji" in
  let bind_stack = attach "samoa" in
  let ch_stack = attach "dandelion" in
  let service_stack = attach "vanuatu" in
  let zone = "cs.washington.edu" in
  let host_of stack =
    Printf.sprintf "%s.%s" (Transport.Netstack.host stack).Sim.Topology.hostname zone
  in
  let bind_context = "uw-cs" in
  let ch_context = "parc-ch" in
  let ch_domain = "parc" and ch_org = "xerox" in
  let credentials =
    { Clearinghouse.Ch_proto.user = Clearinghouse.Ch_name.make ~local:"hcs" ~domain:ch_domain ~org:ch_org;
      password = "hcs-secret" }
  in
  let service_name = "DesiredService" in
  (* Alternate importable services with deliberately varied name
     lengths ("s0", "ss1", ..., "ssssssss7"): same target program,
     different request sizes, so repeated bench iterations produce
     distinct (honest) latencies instead of eight identical samples. *)
  let alt_service_names =
    List.init 8 (fun i -> Printf.sprintf "%s%d" (String.make (i + 1) 's') i)
  in
  let courier_service_name = "printsrv" in
  let target_prog = 200001 and target_vers = 1 in
  let target_port = 2049 in
  let courier_prog = 7001 and courier_vers = 1 in
  let courier_port = 741 in
  let expected_sun_binding =
    Hrpc.Binding.make ~suite:Hrpc.Component.sunrpc_suite
      ~server:(Transport.Address.make (Transport.Netstack.ip service_stack) target_port)
      ~prog:target_prog ~vers:target_vers
  in
  let expected_courier_binding =
    Hrpc.Binding.make ~suite:Hrpc.Component.courier_suite
      ~server:(Transport.Address.make (Transport.Netstack.ip ch_stack) courier_port)
      ~prog:courier_prog ~vers:courier_vers
  in
  let nsm_binding_bind = "b-bind" in
  let nsm_hostaddr_bind = "ha-bind" in
  let nsm_binding_ch = "b-ch" in
  let nsm_hostaddr_ch = "ha-ch" in
  (* --- the public zone: every testbed host plus synthetic ones. *)
  let a_record stack =
    Dns.Rr.make
      (Dns.Name.of_string (host_of stack))
      (Dns.Rr.A (Transport.Netstack.ip stack))
  in
  let synthetic =
    List.concat
      (List.mapi
         (fun i host ->
           let name = Dns.Name.of_string host in
           [
             Dns.Rr.make name (Dns.Rr.A (Int32.of_int (0x0A000900 + i)));
             Dns.Rr.make name
               (Dns.Rr.Txt [ Printf.sprintf "filesrv=%s;vol=%d" host (i mod 4) ]);
           ])
         (Namegen.hosts ~count:extra_hosts ~zone))
  in
  let mail_records =
    List.map
      (fun user ->
        Dns.Rr.make
          (Dns.Name.of_string (Printf.sprintf "%s.users.%s" user zone))
          (Dns.Rr.Txt [ Printf.sprintf "mailbox=%s" (host_of bind_stack) ]))
      [ "alice"; "bob"; "carol" ]
  in
  let public_zone =
    Dns.Zone.simple ~origin:(Dns.Name.of_string zone)
      ([
         a_record client_stack;
         a_record agent_stack;
         a_record nsm_stack;
         a_record meta_stack;
         a_record bind_stack;
         a_record service_stack;
       ]
      @ synthetic @ mail_records)
  in
  let meta_bind =
    Dns.Server.create meta_stack ~port:Transport.Address.Well_known.hns_meta
      ~service_overhead_ms:Calib.meta_bind_service_overhead_ms
      ~per_answer_ms:Calib.bind_per_answer_ms ~allow_update:true ()
  in
  let meta_zone = Dns.Zone.simple ~origin:Hns.Meta_schema.zone_origin [] in
  Dns.Server.add_zone meta_bind meta_zone;
  let public_bind =
    Dns.Server.create bind_stack ~service_overhead_ms:Calib.bind_service_overhead_ms
      ~per_answer_ms:Calib.bind_per_answer_ms ?hot_ranking ()
  in
  Dns.Server.add_zone public_bind public_zone;
  (* A bundle-aware testbed: the modified BIND answers batched FindNSM
     queries; stock scenarios leave it off and clients fall back.
     [prefetch] additionally piggybacks the hottest host addresses on
     each bundle — the hot set is whatever the public BIND has been
     answering A queries for (every hostaddr NSM in the confederation
     funnels through it), and addresses come from the public zone. *)
  let prefetch_cfg =
    if not (bundle && prefetch) then None
    else
      Some
        {
          Hns.Meta_bundle.k = prefetch_k;
          contexts = [ bind_context ];
          (* Per-context ranking: the requesting context's group is its
             zone — everything the uw-cs confederation asks the public
             BIND for lands in the [cs.washington.edu.] group, so a
             crowd in another context's zone cannot pollute these
             hints. *)
          hot =
            (fun ~context ->
              let group =
                if String.equal context bind_context then
                  Dns.Name.to_string (Dns.Zone.origin public_zone)
                else ""
              in
              Dns.Server.hot_ranked public_bind ~group ~k:(prefetch_k + 4) ());
          addr_of =
            (fun name ->
              match Dns.Db.lookup (Dns.Zone.db public_zone) name Dns.Rr.T_a with
              | { Dns.Rr.rdata = Dns.Rr.A ip; _ } :: _ -> Some ip
              | _ -> None);
          ttl_s = 120l;
          (* Hint keep-alive: serving a hint suppresses the very
             sightings that earned it (agents answer from cache), so
             re-note it with the hint row's TTL — otherwise un-hinted
             names, which still fault through the servers once per
             agent per refresh cycle, would always outrank the hinted
             steady set. *)
          note =
            Some
              (fun ~context:_ name ->
                Dns.Server.note_hot_name public_bind ~ttl_ms:120_000.0 name);
        }
  in
  if bundle then Hns.Meta_bundle.install ?prefetch:prefetch_cfg meta_bind;
  (* Meta-zone replica fleet: plain servers on the well-known meta port
     (referral glue carries only IPs), each bundle-aware when the
     primary is — a replica answering bundle probes with NXDOMAIN would
     memoize "no bundle support" into every routed client. They serve
     nothing until {!attach_meta_replicas} wires them up in-sim. *)
  let meta_replica_servers =
    List.init meta_replicas (fun i ->
        let srv =
          Dns.Server.create
            (attach (Printf.sprintf "fiji-r%d" i))
            ~port:Transport.Address.Well_known.hns_meta
            ~service_overhead_ms:Calib.meta_bind_service_overhead_ms
            ~per_answer_ms:Calib.bind_per_answer_ms ()
        in
        if bundle then Hns.Meta_bundle.install ?prefetch:prefetch_cfg srv;
        srv)
  in
  let ch =
    Clearinghouse.Ch_server.create ch_stack ~auth_ms:Calib.ch_auth_ms
      ~disk_ms:Calib.ch_disk_ms ()
  in
  Clearinghouse.Ch_server.add_user ch credentials.Clearinghouse.Ch_proto.user
    ~password:credentials.Clearinghouse.Ch_proto.password;
  (* CH data: host objects with addresses, plus the Courier service. *)
  let ch_db = Clearinghouse.Ch_server.db ch in
  Clearinghouse.Ch_db.store ch_db
    (Clearinghouse.Ch_name.make ~local:"dandelion" ~domain:ch_domain ~org:ch_org)
    (Clearinghouse.Property.item Clearinghouse.Property.Id.address
       (Nsm.Hostaddr_nsm_ch.encode_address (Transport.Netstack.ip ch_stack)));
  Clearinghouse.Ch_db.store ch_db
    (Clearinghouse.Ch_name.make ~local:courier_service_name ~domain:ch_domain
       ~org:ch_org)
    (Clearinghouse.Property.item Clearinghouse.Property.Id.service_binding
       (Hrpc.Binding.to_bytes expected_courier_binding));
  List.iter
    (fun local ->
      Clearinghouse.Ch_db.store ch_db
        (Clearinghouse.Ch_name.make ~local ~domain:ch_domain ~org:ch_org)
        (Clearinghouse.Property.item Clearinghouse.Property.Id.description
           ("object " ^ local)))
    (Namegen.ch_objects ~count:8 ~prefix:"obj");
  (* Remote NSM instances (served from the NSM host). *)
  let mk_remote_nsm_caches () = new_nsm_cache_mode cache_mode () in
  let remote_binding_nsm_bind =
    Nsm.Binding_nsm_bind.create nsm_stack ~bind_server:(Dns.Server.addr public_bind)
      ~services:
        (service_directory ~service_name ~alt_service_names ~target_prog
           ~target_vers)
      ~cache:(mk_remote_nsm_caches ()) ~per_query_ms:Calib.nsm_per_query_ms ()
  in
  let remote_hostaddr_nsm_bind =
    Nsm.Hostaddr_nsm_bind.create nsm_stack ~bind_server:(Dns.Server.addr public_bind)
      ~cache:(mk_remote_nsm_caches ()) ?cache_ttl_ms:nsm_cache_ttl_ms
      ~per_query_ms:Calib.nsm_per_query_ms ()
  in
  let remote_binding_nsm_ch =
    Nsm.Binding_nsm_ch.create nsm_stack ~ch_server:(Clearinghouse.Ch_server.addr ch)
      ~credentials ~domain:ch_domain ~org:ch_org ~cache:(mk_remote_nsm_caches ())
      ~per_query_ms:Calib.nsm_per_query_ms ()
  in
  let remote_hostaddr_nsm_ch =
    Nsm.Hostaddr_nsm_ch.create nsm_stack ~ch_server:(Clearinghouse.Ch_server.addr ch)
      ~credentials ~domain:ch_domain ~org:ch_org ~cache:(mk_remote_nsm_caches ())
      ~per_query_ms:Calib.nsm_per_query_ms ()
  in
  (* Baselines. *)
  let localfile =
    Baseline.Localfile.create ~file_read_ms:Calib.localfile_read_ms
      ~parse_per_entry_ms:Calib.localfile_parse_per_entry_ms ()
  in
  let filler_binding i =
    Hrpc.Binding.make ~suite:Hrpc.Component.sunrpc_suite
      ~server:(Transport.Address.make (Int32.of_int (0x0A000900 + i)) (4000 + i))
      ~prog:(300000 + i) ~vers:1
  in
  Baseline.Localfile.replace_all localfile
    ((service_name, host_of service_stack, expected_sun_binding)
    :: List.init (Calib.localfile_population - 1) (fun i ->
           (Printf.sprintf "filler%02d" i, Printf.sprintf "host%02d.%s" i zone,
            filler_binding i)));
  let rereg =
    Baseline.Rereg_ch.create client_stack ~ch_server:(Clearinghouse.Ch_server.addr ch)
      ~credentials ~domain:ch_domain ~org:ch_org ()
  in
  (* --- run the servers up and perform registrations. *)
  let portmap_ref = ref None in
  in_sim_engine engine (fun () ->
      Dns.Server.start meta_bind;
      Dns.Server.start public_bind;
      Clearinghouse.Ch_server.start ch;
      (* Target Sun RPC service and its host's portmapper. *)
      let portmap =
        Rpc.Portmap.start ~service_overhead_ms:Calib.portmapper_service_overhead_ms
          service_stack
      in
      Rpc.Portmap.set portmap ~prog:target_prog ~vers:target_vers
        ~protocol:Rpc.Portmap.P_udp ~port:target_port;
      let target = Rpc.Sunrpc.create service_stack ~port:target_port () in
      let echo_sign = Wire.Idl.signature ~arg:Wire.Idl.T_string ~res:Wire.Idl.T_string in
      Rpc.Sunrpc.register target ~prog:target_prog ~vers:target_vers ~procnum:1
        ~sign:echo_sign (fun v -> v);
      Rpc.Sunrpc.start target;
      (* The Courier target on the Xerox host. *)
      let courier_target =
        Rpc.Courier_rpc.create ch_stack ~port:courier_port ()
      in
      Rpc.Courier_rpc.register courier_target ~prog:courier_prog ~vers:courier_vers
        ~procnum:1 ~sign:echo_sign (fun v -> v);
      Rpc.Courier_rpc.start courier_target;
      (* Remote NSM servers. *)
      let serve_bnsm =
        Nsm.Binding_nsm_bind.serve remote_binding_nsm_bind
          ~prog:Hns.Nsm_intf.nsm_prog_base
          ~service_overhead_ms:Calib.nsm_service_overhead_ms ()
      in
      Hrpc.Server.start serve_bnsm;
      let serve_hansm =
        Nsm.Hostaddr_nsm_bind.serve remote_hostaddr_nsm_bind
          ~prog:(Hns.Nsm_intf.nsm_prog_base + 1)
          ~service_overhead_ms:Calib.nsm_service_overhead_ms ()
      in
      Hrpc.Server.start serve_hansm;
      let serve_bnsm_ch =
        Nsm.Binding_nsm_ch.serve remote_binding_nsm_ch
          ~prog:(Hns.Nsm_intf.nsm_prog_base + 2)
          ~service_overhead_ms:Calib.nsm_service_overhead_ms ()
      in
      Hrpc.Server.start serve_bnsm_ch;
      let serve_hansm_ch =
        Nsm.Hostaddr_nsm_ch.serve remote_hostaddr_nsm_ch
          ~prog:(Hns.Nsm_intf.nsm_prog_base + 3)
          ~service_overhead_ms:Calib.nsm_service_overhead_ms ()
      in
      Hrpc.Server.start serve_hansm_ch;
      (* Meta-naming registrations, via an administrative meta client
         colocated with the meta server. *)
      let admin_cache = Hns.Cache.create ~mode:Hns.Cache.Demarshalled () in
      let meta =
        Hns.Meta_client.create meta_stack ~meta_server:(Dns.Server.addr meta_bind)
          ~cache:admin_cache ()
      in
      let nsm_host = host_of nsm_stack in
      let reg what = function
        | Ok () -> ignore what
        | Error e ->
            failwith (Printf.sprintf "setup: %s failed: %s" what (Hns.Errors.to_string e))
      in
      reg "ns UW-BIND"
        (Hns.Admin.register_name_service meta ~name:"UW-BIND"
           {
             Hns.Meta_schema.ns_type = "bind";
             ns_host = host_of bind_stack;
             ns_host_context = bind_context;
             ns_port = 53;
           });
      reg "ns PARC-CH"
        (Hns.Admin.register_name_service meta ~name:"PARC-CH"
           {
             Hns.Meta_schema.ns_type = "clearinghouse";
             ns_host = "dandelion";
             ns_host_context = ch_context;
             ns_port = Transport.Address.Well_known.clearinghouse;
           });
      reg "context uw-cs"
        (Hns.Admin.register_context meta ~context:bind_context ~ns:"UW-BIND");
      reg "context parc-ch"
        (Hns.Admin.register_context meta ~context:ch_context ~ns:"PARC-CH");
      let reg_nsm name ns query_class server =
        reg
          (Printf.sprintf "nsm %s" name)
          (Hns.Admin.register_nsm_server meta ~name ~ns ~query_class ~host:nsm_host
             ~host_context:bind_context
             (Hrpc.Server.binding server))
      in
      reg_nsm nsm_binding_bind "UW-BIND" Hns.Query_class.hrpc_binding serve_bnsm;
      reg_nsm nsm_hostaddr_bind "UW-BIND" Hns.Query_class.host_address serve_hansm;
      reg_nsm nsm_binding_ch "PARC-CH" Hns.Query_class.hrpc_binding serve_bnsm_ch;
      reg_nsm nsm_hostaddr_ch "PARC-CH" Hns.Query_class.host_address serve_hansm_ch;
      (* FileLocation and MailboxLocation NSMs over BIND. *)
      let file_nsm =
        Nsm.File_nsm.create_bind nsm_stack ~bind_server:(Dns.Server.addr public_bind)
          ~cache:(mk_remote_nsm_caches ()) ~per_query_ms:Calib.nsm_per_query_ms ()
      in
      let serve_file =
        Nsm.Text_nsm.serve file_nsm
          ~prog:(Hns.Nsm_intf.nsm_prog_base + 4)
          ~service_overhead_ms:Calib.nsm_service_overhead_ms ()
      in
      Hrpc.Server.start serve_file;
      reg_nsm "file-bind" "UW-BIND" Hns.Query_class.file_location serve_file;
      let mail_nsm =
        Nsm.Mail_nsm.create_bind nsm_stack ~bind_server:(Dns.Server.addr public_bind)
          ~cache:(mk_remote_nsm_caches ()) ~per_query_ms:Calib.nsm_per_query_ms ()
      in
      let serve_mail =
        Nsm.Text_nsm.serve mail_nsm
          ~prog:(Hns.Nsm_intf.nsm_prog_base + 5)
          ~service_overhead_ms:Calib.nsm_service_overhead_ms ()
      in
      Hrpc.Server.start serve_mail;
      reg_nsm "mail-bind" "UW-BIND" Hns.Query_class.mailbox_location serve_mail;
      (* Reregistration baseline data. *)
      (match
         Baseline.Rereg_ch.register rereg ~service:service_name expected_sun_binding
       with
      | Ok () -> ()
      | Error e ->
          failwith
            (Format.asprintf "setup: rereg register failed: %a" Baseline.Rereg_ch.pp_error
               e));
      (portmap_ref := Some portmap));
  let portmap = match !portmap_ref with Some p -> p | None -> assert false in
  {
    engine;
    topo;
    net;
    client_stack;
    agent_stack;
    nsm_stack;
    meta_stack;
    bind_stack;
    ch_stack;
    service_stack;
    meta_bind;
    meta_zone;
    meta_replica_servers;
    public_bind;
    public_zone;
    ch;
    portmap;
    credentials;
    zone;
    bind_context;
    ch_context;
    service_name;
    service_host = host_of service_stack;
    target_prog;
    target_vers;
    expected_sun_binding;
    courier_service_name;
    expected_courier_binding;
    ch_domain;
    ch_org;
    nsm_binding_bind;
    nsm_hostaddr_bind;
    nsm_binding_ch;
    nsm_hostaddr_ch;
    remote_binding_nsm_bind;
    remote_hostaddr_nsm_bind;
    remote_binding_nsm_ch;
    remote_hostaddr_nsm_ch;
    localfile;
    rereg;
    cache_mode;
    bundle_enabled = bundle;
    hand_codec_enabled = hand_codec;
    alt_service_names;
  }

type parties = {
  env : Hns.Import.env;
  hns : Hns.Client.t;
  hns_cache : Hns.Cache.t;
  nsm_bind : Nsm.Binding_nsm_bind.t;
  nsm_cache : Hns.Cache.t;
  agent : Hns.Agent.t option;
}

let arrange t arrangement =
  match (arrangement : Hns.Import.arrangement) with
  | Hns.Import.All_linked ->
      let hns = new_hns t ~on:t.client_stack in
      let nsm = new_binding_nsm_bind ~alternates:true t ~on:t.client_stack in
      {
        env =
          Hns.Import.env ~stack:t.client_stack ~local_hns:hns
            ~linked_nsms:[ (t.nsm_binding_bind, Nsm.Binding_nsm_bind.impl nsm) ]
            ();
        hns;
        hns_cache = Hns.Client.cache hns;
        nsm_bind = nsm;
        nsm_cache = Nsm.Binding_nsm_bind.cache nsm;
        agent = None;
      }
  | Hns.Import.Combined_agent ->
      let hns = new_hns t ~on:t.agent_stack in
      let nsm = new_binding_nsm_bind ~alternates:true t ~on:t.agent_stack in
      let agent =
        Hns.Agent.create hns
          ~linked_nsms:[ (t.nsm_binding_bind, Nsm.Binding_nsm_bind.impl nsm) ]
          ~service_overhead_ms:Calib.agent_service_overhead_ms ()
      in
      Hns.Agent.start agent;
      {
        env = Hns.Import.env ~stack:t.client_stack ~agent:(Hns.Agent.binding agent) ();
        hns;
        hns_cache = Hns.Client.cache hns;
        nsm_bind = nsm;
        nsm_cache = Nsm.Binding_nsm_bind.cache nsm;
        agent = Some agent;
      }
  | Hns.Import.Remote_hns ->
      let hns = new_hns t ~on:t.agent_stack in
      let agent =
        Hns.Agent.create hns ~service_overhead_ms:Calib.agent_service_overhead_ms ()
      in
      Hns.Agent.start agent;
      let nsm = new_binding_nsm_bind ~alternates:true t ~on:t.client_stack in
      {
        env =
          Hns.Import.env ~stack:t.client_stack ~agent:(Hns.Agent.binding agent)
            ~linked_nsms:[ (t.nsm_binding_bind, Nsm.Binding_nsm_bind.impl nsm) ]
            ();
        hns;
        hns_cache = Hns.Client.cache hns;
        nsm_bind = nsm;
        nsm_cache = Nsm.Binding_nsm_bind.cache nsm;
        agent = Some agent;
      }
  | Hns.Import.Remote_nsms ->
      let hns = new_hns t ~on:t.client_stack in
      {
        env = Hns.Import.env ~stack:t.client_stack ~local_hns:hns ();
        hns;
        hns_cache = Hns.Client.cache hns;
        nsm_bind = t.remote_binding_nsm_bind;
        nsm_cache = Nsm.Binding_nsm_bind.cache t.remote_binding_nsm_bind;
        agent = None;
      }
  | Hns.Import.All_remote ->
      let hns = new_hns t ~on:t.agent_stack in
      let agent =
        Hns.Agent.create hns ~service_overhead_ms:Calib.agent_service_overhead_ms ()
      in
      Hns.Agent.start agent;
      {
        env = Hns.Import.env ~stack:t.client_stack ~agent:(Hns.Agent.binding agent) ();
        hns;
        hns_cache = Hns.Client.cache hns;
        nsm_bind = t.remote_binding_nsm_bind;
        nsm_cache = Nsm.Binding_nsm_bind.cache t.remote_binding_nsm_bind;
        agent = Some agent;
      }

let stop_parties p = match p.agent with Some a -> Hns.Agent.stop a | None -> ()

let flush_parties p =
  Hns.Cache.flush p.hns_cache;
  Hns.Cache.flush p.nsm_cache
