(** The standard simulated HCS testbed.

    Reproduces the paper's measurement environment: MicroVAX-class
    hosts on a lightly loaded Ethernet; a public BIND serving the
    [cs.washington.edu] zone; the modified meta-BIND serving
    [hns-meta.]; a Clearinghouse for the Xerox subsystem; a portmapper
    and a Sun RPC target service ("DesiredService") to import; plus
    remote NSM servers for both name services, registered in the
    meta-naming database. All costs come from {!Calib}.

    [build] returns with every server running and every registration
    done (it runs the engine to quiescence once). Experiment code then
    uses {!in_sim} to execute client work on the virtual clock. *)

type t = {
  engine : Sim.Engine.t;
  topo : Sim.Topology.t;
  net : Transport.Netstack.t;
  client_stack : Transport.Netstack.stack;
  agent_stack : Transport.Netstack.stack;
  nsm_stack : Transport.Netstack.stack;
  meta_stack : Transport.Netstack.stack;
  bind_stack : Transport.Netstack.stack;
  ch_stack : Transport.Netstack.stack;
  service_stack : Transport.Netstack.stack;
  meta_bind : Dns.Server.t;
  meta_zone : Dns.Zone.t;  (** the [hns-meta.] zone [meta_bind] owns *)
  meta_replica_servers : Dns.Server.t list;
      (** Meta-zone replica fleet ([build ?meta_replicas]): idle plain
          servers until {!attach_meta_replicas} chains them under the
          primary; {!new_hns} clients route reads over them via a
          per-client {!Dns.Replica_set}. *)
  public_bind : Dns.Server.t;
  public_zone : Dns.Zone.t;
  ch : Clearinghouse.Ch_server.t;
  portmap : Rpc.Portmap.t;
  credentials : Clearinghouse.Ch_proto.credentials;
  zone : string;
  bind_context : string;
  ch_context : string;
  service_name : string;
  service_host : string;
  target_prog : int;
  target_vers : int;
  expected_sun_binding : Hrpc.Binding.t;
  courier_service_name : string;
  expected_courier_binding : Hrpc.Binding.t;
  ch_domain : string;
  ch_org : string;
  nsm_binding_bind : string;
  nsm_hostaddr_bind : string;
  nsm_binding_ch : string;
  nsm_hostaddr_ch : string;
  remote_binding_nsm_bind : Nsm.Binding_nsm_bind.t;
  remote_hostaddr_nsm_bind : Nsm.Hostaddr_nsm_bind.t;
  remote_binding_nsm_ch : Nsm.Binding_nsm_ch.t;
  remote_hostaddr_nsm_ch : Nsm.Hostaddr_nsm_ch.t;
  localfile : Baseline.Localfile.t;
  rereg : Baseline.Rereg_ch.t;
  cache_mode : Hns.Cache.mode;
  bundle_enabled : bool;
      (** The meta-BIND answers batched FindNSM queries
          ({!Hns.Meta_bundle}), and {!new_hns} defaults to issuing
          them. *)
  hand_codec_enabled : bool;
      (** {!new_hns} clients default to the hand-marshalled hot codec
          ({!Wire.Hotcodec} / {!Hns.Hot_codec}) at {!Calib.hand_cost},
          with Generic_marshal as the cold-shape fallback. *)
  alt_service_names : string list;
      (** Importable alternates for [service_name] with varied name
          lengths (same target program) — bench iterations sample
          across them so repeated runs yield distinct latencies. *)
}

(** [build ?cache_mode ?extra_hosts ?bundle ?prefetch ()] —
    [cache_mode] (default [Marshalled], as in the paper's Table 3.1
    measurements) applies to every HNS and NSM cache the scenario
    creates. [bundle] (default off) installs the batched-FindNSM
    answerer on the meta-BIND and makes {!new_hns} clients use it.
    [prefetch] (default off, requires [bundle]) makes the bundle
    answerer piggyback the public BIND's hottest host addresses
    (resolve-tail prefetch) — kept separate from [bundle] so existing
    bundle benchmarks measure the unprefetched path. [hot_ranking]
    overrides the public BIND's hot-name scoring (default: decayed —
    the load harness passes [Sliding_count] to measure the naive
    baseline); [prefetch_k] (default 8) is the piggyback budget;
    [nsm_cache_ttl_ms] shortens the shared remote host-address NSM's
    cache so its BIND A queries (the hot tracker's signal) recur at a
    realistic rate under sustained load. [hand_codec] (default off, to
    preserve the paper's measured generated-stub costs) makes
    {!new_hns} clients use the hand-marshalled hot-path codec.
    [meta_replicas] (default 0) adds that many meta-zone replica
    servers — see {!attach_meta_replicas}. *)
val build :
  ?cache_mode:Hns.Cache.mode ->
  ?extra_hosts:int ->
  ?bundle:bool ->
  ?hand_codec:bool ->
  ?prefetch:bool ->
  ?hot_ranking:Dns.Hotrank.strategy ->
  ?prefetch_k:int ->
  ?nsm_cache_ttl_ms:float ->
  ?meta_replicas:int ->
  unit ->
  t

(** Start the replica fleet and chain it under the meta primary (IXFR
    + NOTIFY). Must run inside {!in_sim}; pass the result to
    {!detach_meta_replicas} before that driving window ends, or the
    replicas' poll backstops keep the engine from draining. *)
val attach_meta_replicas : t -> Dns.Secondary.t list

val detach_meta_replicas : t -> Dns.Secondary.t list -> unit

(** A fresh routing view over the replica fleet for a client on [on];
    [None] when the scenario was built without [meta_replicas]. *)
val new_replica_set : t -> on:Transport.Netstack.stack -> Dns.Replica_set.t option

(** Run a thunk as a simulated process and drive the engine to
    quiescence; returns the thunk's value. *)
val in_sim : t -> (unit -> 'a) -> 'a

(** Virtual-time duration of a thunk, for use {e inside} [in_sim]. *)
val timed : (unit -> 'a) -> 'a * float

(** {1 Component factories (calibrated)} *)

val new_cache : t -> unit -> Hns.Cache.t
val new_nsm_cache : t -> unit -> Hns.Cache.t

(** An HNS instance on a stack, with fresh linked host-address NSMs.
    [staleness_budget_ms] enables serve-stale on its cache;
    [rpc_policy] sets retry/backoff behavior for its HRPC exchanges;
    [enable_bundle] (default: the scenario's [bundle_enabled]) makes
    it issue batched FindNSM meta queries; [negative_ttl_ms] enables
    negative caching of absent meta records; [nsm_cache_ttl_ms]
    shortens this instance's {e linked} host-address NSM caches
    (default 600 s) so sustained traffic re-queries the public BIND —
    the load harness uses it to give the hot tracker a live sighting
    stream; [cache_mode] (default: the scenario's) overrides the cache
    representation — the v2 shared agent runs demarshalled regardless
    of what the measured 1987 clients use; [hand_codec] (default: the
    scenario's [hand_codec_enabled]) switches this instance's hot
    record shapes onto the hand-marshalled codec. *)
val new_hns :
  ?staleness_budget_ms:float ->
  ?rpc_policy:Rpc.Control.retry_policy ->
  ?enable_bundle:bool ->
  ?negative_ttl_ms:float ->
  ?nsm_cache_ttl_ms:float ->
  ?cache_mode:Hns.Cache.mode ->
  ?hand_codec:bool ->
  t ->
  on:Transport.Netstack.stack ->
  Hns.Client.t

(** [alternates] (default off) makes the NSM also serve every
    [alt_service_names] entry; {!arrange} turns it on so the import
    bench can vary the requested service per iteration. *)
val new_binding_nsm_bind :
  ?alternates:bool -> t -> on:Transport.Netstack.stack -> Nsm.Binding_nsm_bind.t

val new_binding_nsm_ch : t -> on:Transport.Netstack.stack -> Nsm.Binding_nsm_ch.t

(** {1 Colocation arrangements (Table 3.1)} *)

(** Everything one arrangement's measurement needs: the import
    environment plus handles to the caches in play. *)
type parties = {
  env : Hns.Import.env;
  hns : Hns.Client.t;
  hns_cache : Hns.Cache.t;
  nsm_bind : Nsm.Binding_nsm_bind.t;
  nsm_cache : Hns.Cache.t;
  agent : Hns.Agent.t option;
}

(** Must run inside {!in_sim} (it may start agent servers). *)
val arrange : t -> Hns.Import.arrangement -> parties

val stop_parties : parties -> unit

(** Flush every cache belonging to the parties. *)
val flush_parties : parties -> unit
