(* The shared host agent v2: one demarshalled cache and one
   singleflight table serving every client process on a host, plus the
   resolve-tail prefetch; graceful degradation when the agent crashes;
   NOTIFY subscriber liveness GC. *)

open Helpers
module S = Workload.Scenario

(* One testbed with the bundle answerer and resolve-tail prefetch, its
   public-BIND hot-name tracker warmed so the meta server has a
   ranking to piggyback. Server-side state the tests share is
   read-only after this. *)
let agent_scn =
  lazy
    (let scn = S.build ~bundle:true ~prefetch:true () in
     Experiments.warm_hot_tracker scn;
     scn)

(* The v2 agent's shared cache is demarshalled regardless of the
   scenario's (1987-measured) client mode. *)
let fresh_agent scn =
  let hns =
    S.new_hns ~cache_mode:Hns.Cache.Demarshalled scn ~on:scn.S.agent_stack
  in
  let agent = Hns.Agent.create hns () in
  Hns.Agent.start agent;
  agent

let upstream agent =
  Hns.Meta_client.remote_lookups (Hns.Client.meta (Hns.Agent.hns agent))

(* --- cross-process coalescing --- *)

(* [k] client processes present the same cold FindNSM to one agent
   concurrently; the agent's own singleflight must collapse them into
   a single upstream meta query, every follower receiving the
   leader's answer. *)
let burst_find_nsm scn ~waiters =
  S.in_sim scn (fun () ->
      let agent = fresh_agent scn in
      let mb = Sim.Engine.Mailbox.create () in
      for i = 1 to waiters do
        Sim.Engine.spawn_child ~name:(Printf.sprintf "proc%d" i) (fun () ->
            Sim.Engine.Mailbox.send mb
              (Hns.Agent.remote_find_nsm scn.S.client_stack
                 ~agent:(Hns.Agent.binding agent) ~context:scn.S.bind_context
                 ~query_class:Hns.Query_class.hrpc_binding))
      done;
      let results = List.init waiters (fun _ -> Sim.Engine.Mailbox.recv mb) in
      let stats = (upstream agent, Hns.Agent.coalesced agent) in
      Hns.Agent.stop agent;
      (results, stats))

let burst_single_upstream () =
  let scn = Lazy.force agent_scn in
  let results, (lookups, coalesced) = burst_find_nsm scn ~waiters:6 in
  let answers = List.map (get_ok ~msg:"burst find_nsm") results in
  check_int "one upstream meta query for six processes" 1 lookups;
  check_int "five rode the leader" 5 coalesced;
  match answers with
  | [] -> Alcotest.fail "no answers"
  | (nsm0, b0) :: rest ->
      List.iter
        (fun (nsm, b) ->
          check_string "same designated NSM for every process" nsm0 nsm;
          check_bool "same binding for every process" true
            (Hrpc.Binding.equal b0 b))
        rest

let coalescing_property =
  QCheck.Test.make
    ~name:"N cold client processes -> one upstream query via the agent"
    ~count:6
    QCheck.(int_range 2 8)
    (fun waiters ->
      let scn = Lazy.force agent_scn in
      let results, (lookups, coalesced) = burst_find_nsm scn ~waiters in
      List.iter (fun r -> ignore (get_ok ~msg:"find_nsm" r)) results;
      lookups = 1 && coalesced = waiters - 1)

let import_coalesces () =
  let scn = Lazy.force agent_scn in
  let k = 4 in
  let results, coalesced =
    S.in_sim scn (fun () ->
        let agent = fresh_agent scn in
        let name =
          Hns.Hns_name.make ~context:scn.S.bind_context ~name:scn.S.service_host
        in
        let mb = Sim.Engine.Mailbox.create () in
        for i = 1 to k do
          Sim.Engine.spawn_child ~name:(Printf.sprintf "imp%d" i) (fun () ->
              Sim.Engine.Mailbox.send mb
                (Hns.Agent.remote_import scn.S.client_stack
                   ~agent:(Hns.Agent.binding agent) ~service:scn.S.service_name
                   name))
        done;
        let results = List.init k (fun _ -> Sim.Engine.Mailbox.recv mb) in
        let coalesced = Hns.Agent.coalesced agent in
        Hns.Agent.stop agent;
        (results, coalesced))
  in
  check_int "followers coalesced on the whole import" (k - 1) coalesced;
  List.iter
    (fun r ->
      check_bool "every process got the service binding" true
        (Hrpc.Binding.equal (get_ok ~msg:"import" r) scn.S.expected_sun_binding))
    results

(* --- the shared cache across processes --- *)

let shared_cache_across_processes () =
  let scn = Lazy.force agent_scn in
  S.in_sim scn (fun () ->
      let agent = fresh_agent scn in
      let resolve () =
        get_ok ~msg:"resolve via agent"
          (Hns.Agent.remote_resolve_addr scn.S.client_stack
             ~agent:(Hns.Agent.binding agent)
             (Hns.Hns_name.make ~context:scn.S.bind_context
                ~name:
                  (Printf.sprintf "tonga.%s" scn.S.zone)))
      in
      let a = resolve () in
      let after_first = upstream agent in
      check_int "the cold resolve paid one bundle query" 1 after_first;
      (* A second client process asking later: served wholly from the
         shared cache, no new upstream traffic. *)
      let b = resolve () in
      check_int "no upstream traffic for the second process" after_first
        (upstream agent);
      check_bool "warm answer identical" true (a = b);
      check_bool "counted as an agent cache hit" true
        (Hns.Agent.cache_hits agent >= 1);
      check_bool "hit ratio visible" true (Hns.Agent.cache_hit_ratio agent > 0.0);
      Hns.Agent.stop agent)

(* --- resolve-tail prefetch --- *)

let prefetch_skips_resolve_tail () =
  let scn = Lazy.force agent_scn in
  S.in_sim scn (fun () ->
      let agent = fresh_agent scn in
      let meta = Hns.Client.meta (Hns.Agent.hns agent) in
      let resolve host_stack =
        get_ok ~msg:"resolve"
          (Hns.Agent.remote_resolve_addr scn.S.client_stack
             ~agent:(Hns.Agent.binding agent)
             (Hns.Hns_name.make ~context:scn.S.bind_context
                ~name:
                  (Printf.sprintf "%s.%s"
                     (Transport.Netstack.host host_stack).Sim.Topology.hostname
                     scn.S.zone)))
      in
      (* The cold resolve's bundle reply carries the hot addresses. *)
      let ip = resolve scn.S.client_stack in
      check_bool "resolved to tonga's address" true
        (ip = Transport.Netstack.ip scn.S.client_stack);
      check_int "exactly one upstream query" 1 (upstream agent);
      check_bool "prefetch rows admitted to the shared cache" true
        (Hns.Agent.prefetch_seeded agent >= 3);
      check_bool "the cold resolve's own tail was prefetched" true
        (Hns.Meta_client.prefetch_hits meta >= 1);
      (* Other hot hosts: their whole resolution — FindNSM and the
         data step — is already in the shared cache, so no packet
         leaves for the meta server or any NSM. *)
      let ip_agent = resolve scn.S.agent_stack in
      let ip_nsm = resolve scn.S.nsm_stack in
      check_bool "rarotonga correct" true
        (ip_agent = Transport.Netstack.ip scn.S.agent_stack);
      check_bool "niue correct" true
        (ip_nsm = Transport.Netstack.ip scn.S.nsm_stack);
      check_int "still one upstream query after three resolutions" 1
        (upstream agent);
      check_bool "tail round trips skipped" true
        (Hns.Meta_client.prefetch_hits meta >= 3);
      Hns.Agent.stop agent)

(* --- graceful degradation: the agent crashes mid-flight --- *)

let m_failovers = Obs.Metrics.counter "hns.import.agent_failovers"

let agent_crash_failover () =
  let scn = S.build () in
  S.in_sim scn (fun () ->
      let agent = fresh_agent scn in
      let local = S.new_hns scn ~on:scn.S.client_stack in
      let env =
        Hns.Import.env ~stack:scn.S.client_stack ~local_hns:local
          ~agent:(Hns.Agent.binding agent) ()
      in
      let name =
        Hns.Hns_name.make ~context:scn.S.bind_context ~name:scn.S.service_host
      in
      (* Sanity: through the live agent first. *)
      let b =
        get_ok ~msg:"import via live agent"
          (Hns.Import.import env Hns.Import.Combined_agent
             ~service:scn.S.service_name name)
      in
      check_bool "live agent returns the binding" true
        (Hrpc.Binding.equal b scn.S.expected_sun_binding);
      check_int "no failover while the agent is up" 0
        (Obs.Metrics.value m_failovers);
      (* Crash the agent's host and import again: the client must fall
         over to direct resolution (local FindNSM, remote NSM call)
         and still produce the same binding. *)
      let before = Obs.Metrics.value m_failovers in
      let inj =
        Chaos.Injector.install
          [ Chaos.Plan.crash ~host:"rarotonga" ~at:(Sim.Engine.time ()) () ]
          scn.S.net
      in
      Sim.Engine.sleep 50.0;
      let b2 =
        get_ok ~msg:"import despite the crashed agent"
          (Hns.Import.import env Hns.Import.Combined_agent
             ~service:scn.S.service_name name)
      in
      Chaos.Injector.uninstall inj;
      check_bool "failover produced the same binding" true
        (Hrpc.Binding.equal b2 scn.S.expected_sun_binding);
      check_int "failover counted" (before + 1) (Obs.Metrics.value m_failovers);
      Hns.Agent.stop agent)

(* --- NOTIFY subscriber liveness GC --- *)

let m_deregistered = Obs.Metrics.counter "dns.notify.deregistered"

let notify_gc_deregisters_dead_subscriber () =
  let scn = S.build () in
  S.in_sim scn (fun () ->
      (* One live subscriber and one address nobody listens on. *)
      let client = S.new_hns scn ~on:scn.S.client_stack in
      let live, stop_listener =
        Hns.Meta_client.start_notify_listener (Hns.Client.meta client)
      in
      let dead =
        Transport.Address.make (Transport.Netstack.ip scn.S.nsm_stack) 59_999
      in
      Dns.Server.register_notify scn.S.meta_bind live;
      Dns.Server.register_notify scn.S.meta_bind dead;
      let before = Obs.Metrics.value m_deregistered in
      let admin = S.new_hns scn ~on:scn.S.meta_stack in
      let meta = Hns.Client.meta admin in
      (* Three zone updates: three pushes the dead target never acks —
         the strike limit — while the live listener acks each one. *)
      for i = 1 to 3 do
        let context = Printf.sprintf "agent-gc-%d" i in
        ignore
          (get_ok ~msg:"register"
             (Hns.Admin.register_context meta ~context ~ns:"UW-BIND"));
        Sim.Engine.sleep 2_500.0
      done;
      check_bool "dead subscriber deregistered" true
        (not (List.mem dead (Dns.Server.notify_targets scn.S.meta_bind)));
      check_bool "live subscriber survives" true
        (List.mem live (Dns.Server.notify_targets scn.S.meta_bind));
      check_int "GC counted once" (before + 1)
        (Obs.Metrics.value m_deregistered);
      for i = 1 to 3 do
        ignore
          (Hns.Admin.remove_context meta
             ~context:(Printf.sprintf "agent-gc-%d" i))
      done;
      stop_listener ())

let suite =
  [
    Alcotest.test_case "six processes, one upstream query" `Quick
      burst_single_upstream;
    qtest coalescing_property;
    Alcotest.test_case "whole imports coalesce" `Quick import_coalesces;
    Alcotest.test_case "shared cache serves later processes" `Quick
      shared_cache_across_processes;
    Alcotest.test_case "prefetch skips the resolve tail" `Quick
      prefetch_skips_resolve_tail;
    Alcotest.test_case "crashed agent fails over to direct resolution" `Quick
      agent_crash_failover;
    Alcotest.test_case "NOTIFY GC deregisters dead subscribers" `Quick
      notify_gc_deregisters_dead_subscriber;
  ]
