(* The chaos layer: timed fault plans, the injector's per-packet
   oracle, and the degradation paths they exercise — failover across
   alternate NSMs and serve-stale answers from the cache.

   The heart of the suite is a fault matrix: each fault kind (crash,
   partition, latency, corruption) against each resolution path (cold
   FindNSM walk, warm cache, failover to an alternate NSM), with the
   expected outcome asserted per cell and a hard bound on virtual time
   so no cell can hang silently. A determinism regression then pins
   the whole layer: the same plan and seed must reproduce the fault
   trace and the metrics render byte for byte. *)

open Helpers
module S = Workload.Scenario

(* Fast-failing retry policy so faulted cells conclude quickly; its
   worst case (two attempts, 300/600 ms, one capped pause) is about a
   second of virtual time. *)
let chaos_policy =
  {
    Rpc.Control.default_policy with
    Rpc.Control.attempts = 2;
    attempt_timeout_ms = 300.0;
    backoff_base_ms = 50.0;
    backoff_cap_ms = 400.0;
  }

(* --- plan construction --- *)

let plan_validation () =
  let rejected f = match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  check_bool "crash heals before it starts" true
    (rejected (fun () -> Chaos.Plan.crash ~host:"h" ~at:5.0 ~heal_at:5.0 ()));
  check_bool "partition with empty group" true
    (rejected (fun () ->
         Chaos.Plan.partition ~group_a:[] ~group_b:[ "h" ] ~at:0.0 ~heal_at:1.0));
  check_bool "negative latency surcharge" true
    (rejected (fun () ->
         Chaos.Plan.latency_spike ~at:0.0 ~heal_at:1.0 ~add_ms:(-1.0) ()));
  check_bool "corruption probability above 1" true
    (rejected (fun () ->
         Chaos.Plan.corrupt ~at:0.0 ~heal_at:1.0 ~probability:1.5 ()));
  check_bool "fault start before t=0" true
    (rejected (fun () ->
         Chaos.Plan.partition ~group_a:[ "a" ] ~group_b:[ "b" ] ~at:(-1.0)
           ~heal_at:1.0))

(* [contains s sub] — naive substring search; the test strings are tiny. *)
let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let plan_render () =
  let plan =
    [
      Chaos.Plan.crash ~host:"niue" ~at:2000.0 ~heal_at:6000.0 ();
      Chaos.Plan.crash ~host:"fiji" ~at:100.0 ();
      Chaos.Plan.latency_spike ~hosts:[ "samoa" ] ~at:0.0 ~heal_at:500.0
        ~add_ms:40.0 ~ramp:true ();
    ]
  in
  let s = Chaos.Plan.to_string plan in
  check_bool "crash window rendered" true
    (contains s "crash niue [2000,6000)");
  check_bool "unhealed crash renders inf" true
    (contains s "crash fiji [100,inf)");
  check_bool "ramp rendered" true (contains s "ramp")

(* --- the fault matrix --- *)

let resolve_service hns scn =
  Hns.Client.resolve hns ~query_class:Hns.Query_class.hrpc_binding
    ~payload_ty:Hns.Nsm_intf.binding_payload_ty ~service:scn.S.service_name
    (Hns.Hns_name.make ~context:scn.S.bind_context ~name:scn.S.service_host)

(* A second binding NSM for UW-BIND, on rarotonga, registered in the
   failover set so crashing the designated NSM host (niue) leaves a
   live alternate. *)
let register_alternate scn =
  let admin =
    Hns.Meta_client.create scn.S.meta_stack
      ~meta_server:(Dns.Server.addr scn.S.meta_bind)
      ~cache:(Hns.Cache.create ~mode:Hns.Cache.Demarshalled ())
      ()
  in
  let alt =
    Nsm.Binding_nsm_bind.create scn.S.agent_stack
      ~bind_server:(Dns.Server.addr scn.S.public_bind)
      ~services:[ (scn.S.service_name, (scn.S.target_prog, scn.S.target_vers)) ]
      ()
  in
  let srv =
    Nsm.Binding_nsm_bind.serve alt ~prog:(Hns.Nsm_intf.nsm_prog_base + 6) ()
  in
  Hrpc.Server.start srv;
  match
    Hns.Admin.register_alternate_nsm_server admin ~name:"b-bind-alt"
      ~ns:"UW-BIND" ~query_class:Hns.Query_class.hrpc_binding
      ~host:("rarotonga." ^ scn.S.zone) ~host_context:scn.S.bind_context
      (Hrpc.Server.binding srv)
  with
  | Ok () -> ()
  | Error e ->
      Alcotest.failf "alternate NSM registration failed: %s"
        (Hns.Errors.to_string e)

(* The three resolution paths a fault can land on. *)
type path =
  | Cold (* full FindNSM walk: meta lookups, then the NSM call *)
  | Warm (* FindNSM served from cache; only the NSM call leaves *)
  | Failover (* designated NSM faulted, alternate registered *)

type expect =
  | Expect_ok (* resolution must succeed with the right binding *)
  | Expect_error (* resolution must surface an error *)
  | Expect_completes (* either way, but it must terminate *)

(* Whether the faulted resolve's packets are expected to cross the
   fault: [Untouched] locks in the claim that the path does not emit
   the faulted traffic at all (e.g. a warm resolve never talks to the
   meta host), [Faulted] that the plan really engaged. *)
type traffic = Faulted | Untouched

let m_failovers = Obs.Metrics.counter "hns.find_nsm.failovers"

(* Run one cell: build the world, arrange the path, install the plan,
   resolve once mid-fault, and check the outcome. Every cell asserts
   termination within a budget: a silent hang would either trip the
   elapsed bound or deadlock the sim (which [in_sim] reports). *)
let run_cell ~path ~plan_of_t0 ~expect ~traffic ~expect_failover () =
  let scn = S.build () in
  let hns = S.new_hns ~rpc_policy:chaos_policy scn ~on:scn.S.client_stack in
  let result, elapsed, faults, failovers =
    S.in_sim scn (fun () ->
        if path = Failover then register_alternate scn;
        (match resolve_service hns scn with
        | Ok (Some _) -> ()
        | _ -> Alcotest.fail "warmup resolve failed");
        if path = Cold then Hns.Client.flush_cache hns;
        let failovers_before = Obs.Metrics.value m_failovers in
        let t0 = Sim.Engine.time () in
        let inj = Chaos.Injector.install (plan_of_t0 t0) scn.S.net in
        Sim.Engine.sleep 100.0;
        let result, elapsed = S.timed (fun () -> resolve_service hns scn) in
        Chaos.Injector.uninstall inj;
        ( result,
          elapsed,
          Chaos.Injector.faults_injected inj,
          Obs.Metrics.value m_failovers - failovers_before ))
  in
  (* No silent hangs: even the worst cell (primary timeout + one
     alternate, each with meta walks) stays inside four retry
     budgets. *)
  let budget = 4.0 *. Rpc.Control.retry_budget_ms chaos_policy in
  if elapsed > budget then
    Alcotest.failf "cell took %.0f ms of virtual time (budget %.0f)" elapsed
      budget;
  (match expect with
  | Expect_ok -> (
      match result with
      | Ok (Some payload) ->
          check_bool "resolved to the expected binding" true
            (Hrpc.Binding.equal
               (Hrpc.Binding.of_value payload)
               scn.S.expected_sun_binding)
      | Ok None -> Alcotest.fail "expected a binding, got not-found"
      | Error e -> Alcotest.failf "expected Ok, got %s" (Hns.Errors.to_string e))
  | Expect_error -> (
      match result with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "expected the fault to surface an error")
  | Expect_completes -> ());
  (match traffic with
  | Faulted -> check_bool "fault engaged some packet" true (faults > 0)
  | Untouched -> check_int "path stayed clear of the fault" 0 faults);
  if expect_failover then
    check_bool "failover counted" true (failovers > 0)

(* The full matrix: every fault kind against every resolution path.

   Cold and warm cells fault the meta host (fiji): the cold walk needs
   it and must error when it is cut off, while the warm path holds the
   six mappings in cache and must not even send it a packet. Failover
   cells fault the designated NSM host (niue) with an alternate
   registered, so severing faults must fail over and succeed.
   Latency delays but never severs, so every path still succeeds;
   corruption garbles replies to the client, which may or may not be
   survivable (a flipped pad byte is harmless), so those cells assert
   termination rather than a verdict. *)
let crash_plan target t0 = [ Chaos.Plan.crash ~host:target ~at:t0 () ]

let partition_plan target t0 =
  [
    Chaos.Plan.partition ~group_a:[ "tonga" ] ~group_b:[ target ] ~at:t0
      ~heal_at:(t0 +. 60_000.0);
  ]

let latency_plan target t0 =
  [
    Chaos.Plan.latency_spike ~hosts:[ target ] ~at:t0 ~heal_at:(t0 +. 60_000.0)
      ~add_ms:100.0 ();
  ]

let corrupt_plan _target t0 =
  [
    Chaos.Plan.corrupt ~dst_hosts:[ "tonga" ] ~at:t0 ~heal_at:(t0 +. 60_000.0)
      ~probability:1.0 ();
  ]

let matrix_cases =
  let cell (kind, plan_of) (path, path_name, target) expect traffic
      expect_failover =
    Alcotest.test_case
      (Printf.sprintf "matrix: %s x %s" kind path_name)
      `Slow
      (run_cell ~path ~plan_of_t0:(plan_of target) ~expect ~traffic
         ~expect_failover)
  in
  let crash = ("crash", crash_plan)
  and partition = ("partition", partition_plan)
  and latency = ("latency", latency_plan)
  and corrupt = ("corrupt", corrupt_plan) in
  let cold = (Cold, "cold", "fiji")
  and warm = (Warm, "warm", "fiji")
  and failover = (Failover, "failover", "niue") in
  [
    cell crash cold Expect_error Faulted false;
    cell partition cold Expect_error Faulted false;
    cell latency cold Expect_ok Faulted false;
    cell corrupt cold Expect_completes Faulted false;
    cell crash warm Expect_ok Untouched false;
    cell partition warm Expect_ok Untouched false;
    cell latency warm Expect_ok Untouched false;
    cell corrupt warm Expect_completes Faulted false;
    cell crash failover Expect_ok Faulted true;
    cell partition failover Expect_ok Faulted true;
    cell latency failover Expect_ok Faulted false;
    cell corrupt failover Expect_completes Faulted false;
  ]

(* --- serve-stale degradation --- *)

let cache_serves_stale_within_budget () =
  let w = make_world ~hosts:1 () in
  in_sim w (fun () ->
      let c =
        Hns.Cache.create ~mode:Hns.Cache.Demarshalled
          ~staleness_budget_ms:5_000.0 ()
      in
      let ty = Wire.Idl.T_string in
      Hns.Cache.insert c ~key:"k" ~ty ~ttl_ms:1_000.0 (Wire.Value.Str "v");
      check_bool "fresh hit" true (Hns.Cache.find c ~key:"k" ~ty <> None);
      Sim.Engine.sleep 2_000.0;
      (* expired: find misses, find_stale still answers *)
      check_bool "expired entry misses" true (Hns.Cache.find c ~key:"k" ~ty = None);
      check_bool "stale answer served" true
        (Hns.Cache.find_stale c ~key:"k" ~ty = Some (Wire.Value.Str "v"));
      check_int "stale serves counted" 1 (Hns.Cache.stale_served c);
      Sim.Engine.sleep 5_000.0;
      (* past the budget: the entry is gone for good *)
      check_bool "stale past budget refused" true
        (Hns.Cache.find_stale c ~key:"k" ~ty = None));
  ()

let cache_no_budget_no_stale () =
  let w = make_world ~hosts:1 () in
  in_sim w (fun () ->
      let c = Hns.Cache.create ~mode:Hns.Cache.Demarshalled () in
      let ty = Wire.Idl.T_string in
      Hns.Cache.insert c ~key:"k" ~ty ~ttl_ms:1_000.0 (Wire.Value.Str "v");
      Sim.Engine.sleep 2_000.0;
      check_bool "zero budget serves nothing stale" true
        (Hns.Cache.find_stale c ~key:"k" ~ty = None);
      check_int "nothing counted" 0 (Hns.Cache.stale_served c))

(* End to end: with the meta server crashed and a short-TTL context
   mapping, a resolution inside the staleness budget still succeeds
   from the stale cache. *)
let resolve_serves_stale_under_meta_crash () =
  let scn = S.build () in
  let hns =
    S.new_hns ~staleness_budget_ms:60_000.0 ~rpc_policy:chaos_policy scn
      ~on:scn.S.client_stack
  in
  S.in_sim scn (fun () ->
      let admin =
        Hns.Meta_client.create scn.S.meta_stack
          ~meta_server:(Dns.Server.addr scn.S.meta_bind)
          ~cache:(Hns.Cache.create ~mode:Hns.Cache.Demarshalled ())
          ()
      in
      (* Re-register the context mapping with a 1 s TTL so it expires
         between the warmup and the faulted resolve. *)
      (match
         Hns.Meta_client.store admin
           ~key:(Hns.Meta_schema.context_key scn.S.bind_context)
           ~ty:Hns.Meta_schema.string_ty ~ttl_s:1l (Wire.Value.Str "UW-BIND")
       with
      | Ok () -> ()
      | Error e -> Alcotest.failf "store: %s" (Hns.Errors.to_string e));
      (match resolve_service hns scn with
      | Ok (Some _) -> ()
      | _ -> Alcotest.fail "warmup resolve failed");
      Sim.Engine.sleep 2_000.0;
      let stale_before = Hns.Cache.stale_served (Hns.Client.cache hns) in
      let t0 = Sim.Engine.time () in
      let inj =
        Chaos.Injector.install [ Chaos.Plan.crash ~host:"fiji" ~at:t0 () ] scn.S.net
      in
      (match resolve_service hns scn with
      | Ok (Some _) -> ()
      | Ok None -> Alcotest.fail "stale resolve returned not-found"
      | Error e ->
          Alcotest.failf "resolve under meta crash failed: %s"
            (Hns.Errors.to_string e));
      check_bool "stale answers served" true
        (Hns.Cache.stale_served (Hns.Client.cache hns) > stale_before);
      Chaos.Injector.uninstall inj)

(* --- determinism regression --- *)

(* The same plan, seed, and workload must reproduce the injector's
   fault trace and the exported metrics render byte for byte. *)
let chaos_run_for_determinism () =
  Obs.Metrics.reset ();
  let scn = S.build () in
  let hns = S.new_hns ~rpc_policy:chaos_policy scn ~on:scn.S.client_stack in
  let trace =
    S.in_sim scn (fun () ->
        ignore (resolve_service hns scn);
        let t0 = Sim.Engine.time () in
        let inj =
          Chaos.Injector.install ~seed:0xD373C7L
            [
              Chaos.Plan.crash ~host:"niue" ~at:(t0 +. 500.0)
                ~heal_at:(t0 +. 2_500.0) ();
              Chaos.Plan.corrupt ~dst_hosts:[ "tonga" ] ~at:(t0 +. 2_500.0)
                ~heal_at:(t0 +. 4_500.0) ~probability:0.5 ();
            ]
            scn.S.net
        in
        for i = 1 to 8 do
          Sim.Engine.sleep 500.0;
          ignore (resolve_service hns scn);
          ignore i
        done;
        Chaos.Injector.uninstall inj;
        Chaos.Injector.trace inj)
  in
  (trace, Obs.Export.metrics_json_lines ())

let chaos_deterministic () =
  let tr1, m1 = chaos_run_for_determinism () in
  let tr2, m2 = chaos_run_for_determinism () in
  check_int "same trace length" (List.length tr1) (List.length tr2);
  List.iteri
    (fun i (l1, l2) ->
      if l1 <> l2 then Alcotest.failf "trace line %d differs:\n%s\n%s" i l1 l2)
    (List.combine tr1 tr2);
  check_bool "trace is nonempty" true (tr1 <> []);
  check_string "metrics render identical" m1 m2

(* Different injector seeds must change corruption choices without
   breaking termination — the seed only feeds the random streams. *)
let injector_seed_isolated () =
  let run seed =
    let w = make_world ~hosts:2 () in
    in_sim w (fun () ->
        let inj =
          Chaos.Injector.install ~seed
            [
              Chaos.Plan.corrupt ~at:0.0 ~heal_at:1_000_000.0 ~probability:1.0 ();
            ]
            w.net
        in
        let server = Hrpc.Server.create w.stacks.(0)
            ~suite:Hrpc.Component.sunrpc_suite ~prog:900 ~vers:1 () in
        let sign = Wire.Idl.signature ~arg:Wire.Idl.T_string ~res:Wire.Idl.T_string in
        Hrpc.Server.register server ~procnum:1 ~sign (fun v -> v);
        Hrpc.Server.start server;
        let r =
          Hrpc.Client.call w.stacks.(1) (Hrpc.Server.binding server) ~procnum:1
            ~sign ~policy:chaos_policy (Wire.Value.Str "payload")
        in
        Chaos.Injector.uninstall inj;
        (r, Chaos.Injector.faults_injected inj))
  in
  let r1, f1 = run 1L in
  let r2, f2 = run 1L in
  check_bool "same seed, same outcome" true (r1 = r2 && f1 = f2);
  (* With probability 1.0 every datagram both ways to the server's
     host is a candidate; at least the request flow must be seen. *)
  check_bool "corruption engaged" true (f1 > 0)

let suite =
  [
    Alcotest.test_case "plan validation" `Quick plan_validation;
    Alcotest.test_case "plan rendering" `Quick plan_render;
    Alcotest.test_case "cache serves stale within budget" `Quick
      cache_serves_stale_within_budget;
    Alcotest.test_case "no budget, no stale answers" `Quick cache_no_budget_no_stale;
    Alcotest.test_case "resolve serves stale under meta crash" `Slow
      resolve_serves_stale_under_meta_crash;
    Alcotest.test_case "deterministic trace and metrics" `Slow chaos_deterministic;
    Alcotest.test_case "injector seed isolation" `Quick injector_seed_isolated;
  ]
  @ matrix_cases
