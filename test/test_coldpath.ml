(* Cold-path collapse: negative caching, the LRU capacity bound,
   batched FindNSM meta queries (the bundle), AXFR cache preloading,
   and request coalescing. *)

open Helpers

let sample_value = Wire.Value.Str "payload"
let sample_ty = Wire.Idl.T_string

(* --- negative caching (cache unit tests) --- *)

let negative_ttl_expiry_and_non_poisoning () =
  let w = make_world ~hosts:1 () in
  in_sim w (fun () ->
      let c = Hns.Cache.create ~mode:Hns.Cache.Demarshalled () in
      Hns.Cache.insert_negative c ~key:"k" ~ttl_ms:100.0;
      (match Hns.Cache.find_outcome c ~key:"k" ~ty:sample_ty with
      | Hns.Cache.Negative_hit -> ()
      | _ -> Alcotest.fail "expected negative hit");
      check_int "neg hit counted" 1 (Hns.Cache.negative_hits c);
      check_int "not a positive hit" 0 (Hns.Cache.hits c);
      check_bool "find maps negatives to None" true
        (Hns.Cache.find c ~key:"k" ~ty:sample_ty = None);
      (* A later positive insert overwrites the cached absence: a
         negative can never poison a subsequent successful lookup. *)
      Hns.Cache.insert c ~key:"k" ~ty:sample_ty sample_value;
      (match Hns.Cache.find_outcome c ~key:"k" ~ty:sample_ty with
      | Hns.Cache.Hit v ->
          check_bool "value survives" true (Wire.Value.equal v sample_value)
      | _ -> Alcotest.fail "positive insert must override the negative");
      (* Negatives never outlive their TTL, even under a generous
         staleness budget: a stale "no" is worth nothing. *)
      let c2 =
        Hns.Cache.create ~mode:Hns.Cache.Demarshalled
          ~staleness_budget_ms:10_000.0 ()
      in
      Hns.Cache.insert_negative c2 ~key:"gone" ~ttl_ms:50.0;
      Sim.Engine.sleep 75.0;
      (match Hns.Cache.find_outcome c2 ~key:"gone" ~ty:sample_ty with
      | Hns.Cache.Miss -> ()
      | _ -> Alcotest.fail "expired negative must miss");
      check_bool "negatives are never served stale" true
        (Hns.Cache.find_stale c2 ~key:"gone" ~ty:sample_ty = None))

(* --- LRU capacity bound --- *)

let lru_bound_evicts_least_recently_used () =
  let w = make_world ~hosts:1 () in
  in_sim w (fun () ->
      let c =
        Hns.Cache.create ~mode:Hns.Cache.Demarshalled ~max_entries:3 ()
      in
      check_bool "bound recorded" true (Hns.Cache.max_entries c = Some 3);
      Hns.Cache.insert c ~key:"a" ~ty:sample_ty sample_value;
      Hns.Cache.insert c ~key:"b" ~ty:sample_ty sample_value;
      Hns.Cache.insert c ~key:"c" ~ty:sample_ty sample_value;
      (* Touch "a" and "b" so "c" is the least recently used. *)
      ignore (Hns.Cache.find c ~key:"a" ~ty:sample_ty);
      ignore (Hns.Cache.find c ~key:"b" ~ty:sample_ty);
      Hns.Cache.insert c ~key:"d" ~ty:sample_ty sample_value;
      check_int "still at capacity" 3 (Hns.Cache.size c);
      check_int "one eviction" 1 (Hns.Cache.lru_evictions c);
      check_bool "LRU victim gone" true
        (Hns.Cache.find c ~key:"c" ~ty:sample_ty = None);
      check_bool "recently used survive" true
        (Hns.Cache.find c ~key:"a" ~ty:sample_ty <> None
        && Hns.Cache.find c ~key:"b" ~ty:sample_ty <> None
        && Hns.Cache.find c ~key:"d" ~ty:sample_ty <> None);
      (* Overwriting an existing key never evicts. *)
      Hns.Cache.insert c ~key:"d" ~ty:sample_ty sample_value;
      check_int "replacement is not an insert" 1 (Hns.Cache.lru_evictions c);
      match Hns.Cache.create ~mode:Hns.Cache.Demarshalled ~max_entries:0 () with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "max_entries 0 should be rejected")

let cache_preload_bulk_insert () =
  let w = make_world ~hosts:1 () in
  in_sim w (fun () ->
      let c = Hns.Cache.create ~mode:Hns.Cache.Demarshalled () in
      let entries =
        List.init 5 (fun i ->
            (Printf.sprintf "key%d" i, sample_ty, 60_000.0, sample_value))
      in
      check_int "all seeded" 5 (Hns.Cache.preload c entries);
      check_int "counter" 5 (Hns.Cache.preloaded c);
      check_bool "seeded entries hit" true
        (Hns.Cache.find c ~key:"key3" ~ty:sample_ty <> None))

(* --- scenario-backed: bundle, preload, coalescing --- *)

let legacy_scn = lazy (Workload.Scenario.build ())
let bundle_scn = lazy (Workload.Scenario.build ~bundle:true ())

let cold_find ?enable_bundle ?negative_ttl_ms scn ~query_class =
  Workload.Scenario.in_sim scn (fun () ->
      let hns =
        Workload.Scenario.new_hns ?enable_bundle ?negative_ttl_ms scn
          ~on:scn.Workload.Scenario.client_stack
      in
      let r =
        Hns.Client.find_nsm hns ~context:scn.Workload.Scenario.bind_context
          ~query_class
      in
      (r, Hns.Meta_client.remote_lookups (Hns.Client.meta hns)))

let bundle_matches_legacy_walk () =
  let legacy = Lazy.force legacy_scn and bundle = Lazy.force bundle_scn in
  List.iter
    (fun query_class ->
      let lr, ll = cold_find legacy ~query_class in
      let br, bl = cold_find bundle ~query_class in
      let l = get_ok ~msg:"legacy find_nsm" lr
      and b = get_ok ~msg:"bundled find_nsm" br in
      check_string "same name service" l.Hns.Find_nsm.ns_name
        b.Hns.Find_nsm.ns_name;
      check_string "same designated NSM" l.Hns.Find_nsm.nsm_name
        b.Hns.Find_nsm.nsm_name;
      check_bool "same binding" true
        (Hrpc.Binding.equal l.Hns.Find_nsm.binding b.Hns.Find_nsm.binding);
      check_int "one round trip when bundled" 1 bl;
      check_bool "bundle strictly cheaper in round trips" true (bl < ll))
    [ Hns.Query_class.hrpc_binding; Hns.Query_class.host_address ]

let bundle_falls_back_on_old_server () =
  (* enable_bundle against a meta server with no bundle answerer: the
     NXDOMAIN probe downgrades the client to per-mapping walks and the
     result is unchanged. *)
  let legacy = Lazy.force legacy_scn in
  let r, _ =
    cold_find legacy ~enable_bundle:true
      ~query_class:Hns.Query_class.hrpc_binding
  in
  let plain, _ = cold_find legacy ~query_class:Hns.Query_class.hrpc_binding in
  let a = get_ok ~msg:"bundle-enabled find" r
  and b = get_ok ~msg:"plain find" plain in
  check_string "same NSM despite fallback" b.Hns.Find_nsm.nsm_name
    a.Hns.Find_nsm.nsm_name

let bundle_fallback_memoized () =
  (* The unsupported answer is remembered: the second cold FindNSM on
     the same instance must not pay the probe round trip again. *)
  let legacy = Lazy.force legacy_scn in
  Workload.Scenario.in_sim legacy (fun () ->
      let hns =
        Workload.Scenario.new_hns ~enable_bundle:true legacy
          ~on:legacy.Workload.Scenario.client_stack
      in
      let find () =
        ignore
          (get_ok ~msg:"find"
             (Hns.Client.find_nsm hns
                ~context:legacy.Workload.Scenario.bind_context
                ~query_class:Hns.Query_class.hrpc_binding))
      in
      find ();
      let after_first = Hns.Meta_client.remote_lookups (Hns.Client.meta hns) in
      Hns.Client.flush_cache hns;
      find ();
      let after_second = Hns.Meta_client.remote_lookups (Hns.Client.meta hns) in
      (* First cold walk paid the probe + the full walk; the second
         cold walk pays only the walk. *)
      check_int "no second probe" (after_first - 1)
        (after_second - after_first))

let negative_cache_absorbs_repeat_misses () =
  let legacy = Lazy.force legacy_scn in
  Workload.Scenario.in_sim legacy (fun () ->
      let hns =
        Workload.Scenario.new_hns ~negative_ttl_ms:200.0 legacy
          ~on:legacy.Workload.Scenario.client_stack
      in
      let meta = Hns.Client.meta hns in
      let find () =
        match
          Hns.Client.find_nsm hns ~context:"mars"
            ~query_class:Hns.Query_class.hrpc_binding
        with
        | Error (Hns.Errors.Unknown_context "mars") -> ()
        | _ -> Alcotest.fail "expected Unknown_context"
      in
      find ();
      let l1 = Hns.Meta_client.remote_lookups meta in
      check_int "one probe for the unknown context" 1 l1;
      find ();
      check_int "negative hit, no second round trip" l1
        (Hns.Meta_client.remote_lookups meta);
      check_bool "counted as a negative hit" true
        (Hns.Cache.negative_hits (Hns.Client.cache hns) >= 1);
      (* After the (short) negative TTL the absence is re-verified. *)
      Sim.Engine.sleep 250.0;
      find ();
      check_int "re-probed after expiry" (l1 + 1)
        (Hns.Meta_client.remote_lookups meta))

let negative_cache_short_circuits_bundle () =
  (* Same shape with the bundle on: the cached absence must answer
     before a second bundle round trip is issued. *)
  let bundle = Lazy.force bundle_scn in
  Workload.Scenario.in_sim bundle (fun () ->
      let hns =
        Workload.Scenario.new_hns ~negative_ttl_ms:200.0 bundle
          ~on:bundle.Workload.Scenario.client_stack
      in
      let meta = Hns.Client.meta hns in
      let find () =
        match
          Hns.Client.find_nsm hns ~context:"mars"
            ~query_class:Hns.Query_class.hrpc_binding
        with
        | Error (Hns.Errors.Unknown_context "mars") -> ()
        | _ -> Alcotest.fail "expected Unknown_context"
      in
      find ();
      let l1 = Hns.Meta_client.remote_lookups meta in
      find ();
      check_int "no second bundle query" l1
        (Hns.Meta_client.remote_lookups meta))

let preload_then_resolve_no_meta_traffic () =
  (* AXFR preload, then a full resolution (FindNSM + remote NSM call):
     regression that the meta server sees zero queries from it. *)
  let legacy = Lazy.force legacy_scn in
  Workload.Scenario.in_sim legacy (fun () ->
      let hns =
        Workload.Scenario.new_hns legacy
          ~on:legacy.Workload.Scenario.client_stack
      in
      let seeded = get_ok ~msg:"preload" (Hns.Client.preload hns) in
      check_bool "zone transferred" true (seeded >= 10);
      let r =
        get_ok ~msg:"resolve"
          (Hns.Client.resolve hns ~query_class:Hns.Query_class.host_address
             ~payload_ty:Hns.Nsm_intf.host_address_payload_ty
             (Hns.Hns_name.make ~context:legacy.Workload.Scenario.bind_context
                ~name:legacy.Workload.Scenario.service_host))
      in
      check_bool "resolution still correct" true
        (r
        = Some
            (Wire.Value.Uint
               (Transport.Netstack.ip legacy.Workload.Scenario.service_stack)));
      check_int "zero meta round trips" 0
        (Hns.Meta_client.remote_lookups (Hns.Client.meta hns));
      check_bool "zone serial captured for refresh" true
        (Hns.Meta_client.zone_serial (Hns.Client.meta hns) <> None))

let preload_refresher_tracks_serial () =
  let legacy = Lazy.force legacy_scn in
  Workload.Scenario.in_sim legacy (fun () ->
      let hns =
        Workload.Scenario.new_hns legacy
          ~on:legacy.Workload.Scenario.client_stack
      in
      ignore (get_ok ~msg:"preload" (Hns.Client.preload hns));
      let serial0 = Hns.Meta_client.zone_serial (Hns.Client.meta hns) in
      let stop = Hns.Client.start_preload_refresher ~interval_ms:500.0 hns in
      (* A registration bumps the zone serial; the refresher should
         notice on its next probe and re-preload. *)
      let admin =
        Workload.Scenario.new_hns legacy
          ~on:legacy.Workload.Scenario.agent_stack
      in
      ignore
        (get_ok ~msg:"register"
           (Hns.Admin.register_context
              (Hns.Client.meta admin)
              ~context:"coldpath-tmp" ~ns:"UW-BIND"));
      Sim.Engine.sleep 1_200.0;
      stop ();
      let serial1 = Hns.Meta_client.zone_serial (Hns.Client.meta hns) in
      check_bool "serial advanced after refresh" true (serial1 > serial0);
      (* The refreshed cache covers the new registration locally. *)
      ignore
        (get_ok ~msg:"find after refresh"
           (Hns.Client.find_nsm hns ~context:"coldpath-tmp"
              ~query_class:Hns.Query_class.hrpc_binding));
      ignore
        (get_ok ~msg:"cleanup"
           (Hns.Admin.remove_context (Hns.Client.meta admin)
              ~context:"coldpath-tmp")))

(* --- request coalescing --- *)

(* N concurrent identical cold FindNSMs through one instance: exactly
   one leader performs the remote lookup(s); the other N-1 ride it. *)
let coalescing_lookups scn ~waiters =
  Workload.Scenario.in_sim scn (fun () ->
      let hns =
        Workload.Scenario.new_hns scn ~on:scn.Workload.Scenario.client_stack
      in
      let mb = Sim.Engine.Mailbox.create () in
      for i = 1 to waiters do
        Sim.Engine.spawn_child ~name:(Printf.sprintf "c%d" i) (fun () ->
            Sim.Engine.Mailbox.send mb
              (Hns.Client.find_nsm hns
                 ~context:scn.Workload.Scenario.bind_context
                 ~query_class:Hns.Query_class.hrpc_binding))
      done;
      let results = List.init waiters (fun _ -> Sim.Engine.Mailbox.recv mb) in
      (results, Hns.Meta_client.remote_lookups (Hns.Client.meta hns)))

let coalesced_counter () =
  match Obs.Metrics.value (Obs.Metrics.counter "hns.find_nsm.coalesced") with
  | n -> n

let coalescing_property =
  QCheck.Test.make ~name:"N concurrent identical misses -> one remote lookup"
    ~count:6
    QCheck.(int_range 2 8)
    (fun waiters ->
      let bundle = Lazy.force bundle_scn in
      let before = coalesced_counter () in
      let results, lookups = coalescing_lookups bundle ~waiters in
      List.iter
        (fun r -> ignore (get_ok ~msg:"coalesced find_nsm" r))
        results;
      lookups = 1 && coalesced_counter () - before = waiters - 1)

let coalescing_legacy_walk () =
  (* Without the bundle the leader's walk takes several round trips —
     but concurrency must not multiply them. *)
  let legacy = Lazy.force legacy_scn in
  let _, solo = coalescing_lookups legacy ~waiters:1 in
  let results, stampede = coalescing_lookups legacy ~waiters:6 in
  List.iter (fun r -> ignore (get_ok ~msg:"find_nsm" r)) results;
  check_int "six concurrent finds cost one walk" solo stampede

let coalescing_transparent_sequentially () =
  (* Sequential callers never observe the singleflight table: a second
     find after the first completes is an ordinary warm walk. *)
  let legacy = Lazy.force legacy_scn in
  let before = coalesced_counter () in
  Workload.Scenario.in_sim legacy (fun () ->
      let hns =
        Workload.Scenario.new_hns legacy
          ~on:legacy.Workload.Scenario.client_stack
      in
      let find () =
        get_ok ~msg:"find"
          (Hns.Client.find_nsm hns
             ~context:legacy.Workload.Scenario.bind_context
             ~query_class:Hns.Query_class.hrpc_binding)
      in
      let a = find () and b = find () in
      check_string "stable answer" a.Hns.Find_nsm.nsm_name
        b.Hns.Find_nsm.nsm_name);
  check_int "nothing coalesced" before (coalesced_counter ())

let suite =
  [
    Alcotest.test_case "negative TTL expiry and non-poisoning" `Quick
      negative_ttl_expiry_and_non_poisoning;
    Alcotest.test_case "LRU bound evicts least recently used" `Quick
      lru_bound_evicts_least_recently_used;
    Alcotest.test_case "Cache.preload bulk insert" `Quick
      cache_preload_bulk_insert;
    Alcotest.test_case "bundle matches the legacy walk" `Quick
      bundle_matches_legacy_walk;
    Alcotest.test_case "bundle falls back on old servers" `Quick
      bundle_falls_back_on_old_server;
    Alcotest.test_case "bundle fallback memoized" `Quick
      bundle_fallback_memoized;
    Alcotest.test_case "negative cache absorbs repeat misses" `Quick
      negative_cache_absorbs_repeat_misses;
    Alcotest.test_case "negative cache short-circuits the bundle" `Quick
      negative_cache_short_circuits_bundle;
    Alcotest.test_case "preload then resolve: no meta traffic" `Quick
      preload_then_resolve_no_meta_traffic;
    Alcotest.test_case "preload refresher tracks the zone serial" `Quick
      preload_refresher_tracks_serial;
    qtest coalescing_property;
    Alcotest.test_case "coalescing under the legacy walk" `Quick
      coalescing_legacy_walk;
    Alcotest.test_case "coalescing transparent sequentially" `Quick
      coalescing_transparent_sequentially;
  ]
