(* Failure injection: packet loss, dead servers, and the error
   propagation paths through the whole stack. *)

open Helpers

(* --- broadcast location baseline --- *)

let sample_binding =
  Hrpc.Binding.make ~suite:Hrpc.Component.sunrpc_suite
    ~server:(Transport.Address.make 0x0A000042l 999) ~prog:7 ~vers:1

let broadcast_finds_owner () =
  let w = make_world ~hosts:4 () in
  let r =
    in_sim w (fun () ->
        let interpreters =
          Array.to_list w.stacks
          |> List.mapi (fun i stack ->
                 Baseline.Broadcast_locate.start_interpreter stack
                   (if i = 2 then [ ("printer", sample_binding) ] else []))
        in
        let r = Baseline.Broadcast_locate.locate w.stacks.(0) "printer" in
        List.iter Baseline.Broadcast_locate.stop_interpreter interpreters;
        r)
  in
  check_bool "found" true (r = Ok (Some sample_binding))

let broadcast_nobody_answers () =
  let w = make_world ~hosts:3 () in
  let r =
    in_sim w (fun () ->
        let interpreters =
          Array.to_list w.stacks
          |> List.map (fun stack -> Baseline.Broadcast_locate.start_interpreter stack [])
        in
        let r = Baseline.Broadcast_locate.locate w.stacks.(0) ~timeout:50.0 "ghost" in
        List.iter Baseline.Broadcast_locate.stop_interpreter interpreters;
        r)
  in
  check_bool "nobody" true (r = Ok None)

let broadcast_costs_every_host () =
  let w = make_world ~hosts:5 () in
  let heard =
    in_sim w (fun () ->
        let interpreters =
          Array.to_list w.stacks
          |> List.mapi (fun i stack ->
                 Baseline.Broadcast_locate.start_interpreter stack
                   (if i = 1 then [ ("svc", sample_binding) ] else []))
        in
        ignore (Baseline.Broadcast_locate.locate w.stacks.(0) "svc");
        Sim.Engine.sleep 100.0;
        let heard =
          List.fold_left
            (fun acc it -> acc + Baseline.Broadcast_locate.queries_heard it)
            0 interpreters
        in
        List.iter Baseline.Broadcast_locate.stop_interpreter interpreters;
        heard)
  in
  check_int "every interpreter paid" 5 heard

(* --- loss on the full HNS path --- *)

let import_survives_packet_loss () =
  (* 15% loss on every hop; retransmission carries lookups through. *)
  let w = make_world ~hosts:2 ~drop_probability:0.15 () in
  let ok =
    in_sim w (fun () ->
        let zone =
          Dns.Zone.simple ~origin:(Dns.Name.of_string "z")
            [ Dns.Rr.make (Dns.Name.of_string "h.z") (Dns.Rr.A 5l) ]
        in
        let server = Dns.Server.create w.stacks.(0) () in
        Dns.Server.add_zone server zone;
        Dns.Server.start server;
        let r =
          Dns.Resolver.create w.stacks.(1) ~servers:[ Dns.Server.addr server ]
            ~enable_cache:false ()
        in
        let ok = ref 0 in
        for _ = 1 to 30 do
          match Dns.Resolver.lookup_a r (Dns.Name.of_string "h.z") with
          | Ok 5l -> incr ok
          | _ -> ()
        done;
        !ok)
  in
  check_bool "most lookups survive 15% loss" true (ok >= 27)

(* --- dead meta server --- *)

let find_nsm_times_out_when_meta_dead () =
  let scn = Workload.Scenario.build () in
  let r =
    Workload.Scenario.in_sim scn (fun () ->
        Dns.Server.stop scn.meta_bind;
        let hns = Workload.Scenario.new_hns scn ~on:scn.client_stack in
        let r =
          Hns.Client.find_nsm hns ~context:scn.bind_context
            ~query_class:Hns.Query_class.hrpc_binding
        in
        (* restore for any later users of this scenario instance *)
        Dns.Server.start scn.meta_bind;
        r)
  in
  match r with
  | Error (Hns.Errors.Rpc_error (Rpc.Control.Timeout _)) -> ()
  | Ok _ -> Alcotest.fail "dead meta server cannot answer"
  | Error e -> Alcotest.failf "wrong error: %s" (Hns.Errors.to_string e)

let cached_client_survives_meta_outage () =
  (* "distributed and replicated for the usual reasons of performance,
     availability..." — even without a replica, a warm cache rides
     through a meta outage. *)
  let scn = Workload.Scenario.build () in
  let warm_result =
    Workload.Scenario.in_sim scn (fun () ->
        let hns = Workload.Scenario.new_hns scn ~on:scn.client_stack in
        (match
           Hns.Client.find_nsm hns ~context:scn.bind_context
             ~query_class:Hns.Query_class.hrpc_binding
         with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "warmup failed: %s" (Hns.Errors.to_string e));
        Dns.Server.stop scn.meta_bind;
        let r =
          Hns.Client.find_nsm hns ~context:scn.bind_context
            ~query_class:Hns.Query_class.hrpc_binding
        in
        Dns.Server.start scn.meta_bind;
        r)
  in
  match warm_result with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "cached FindNSM should survive: %s" (Hns.Errors.to_string e)

(* --- dead NSM --- *)

let import_times_out_when_nsm_dead () =
  let scn = Workload.Scenario.build () in
  let r =
    Workload.Scenario.in_sim scn (fun () ->
        let hns = Workload.Scenario.new_hns scn ~on:scn.client_stack in
        let resolved =
          get_ok ~msg:"find"
            (Hns.Client.find_nsm hns ~context:scn.bind_context
               ~query_class:Hns.Query_class.hrpc_binding)
        in
        (* Call a binding whose server is not there (port off by one). *)
        let dead =
          {
            resolved.Hns.Find_nsm.binding with
            Hrpc.Binding.server =
              {
                resolved.Hns.Find_nsm.binding.Hrpc.Binding.server with
                Transport.Address.port = 1;
              };
          }
        in
        Hns.Nsm_intf.call scn.client_stack (Hns.Nsm_intf.Remote dead)
          ~payload_ty:Hns.Nsm_intf.binding_payload_ty ~service:scn.service_name
          ~hns_name:(Hns.Hns_name.make ~context:scn.bind_context ~name:scn.service_host))
  in
  check_bool "timeout" true
    (match r with
    | Error (Hns.Errors.Rpc_error (Rpc.Control.Timeout _)) -> true
    | _ -> false)

(* --- dead backend name service --- *)

let nsm_reports_backend_outage () =
  let scn = Workload.Scenario.build () in
  let r =
    Workload.Scenario.in_sim scn (fun () ->
        Dns.Server.stop scn.public_bind;
        let nsm = Workload.Scenario.new_binding_nsm_bind scn ~on:scn.client_stack in
        let r =
          Hns.Nsm_intf.call_linked (Nsm.Binding_nsm_bind.impl nsm)
            ~service:scn.service_name
            ~hns_name:(Hns.Hns_name.make ~context:scn.bind_context ~name:scn.service_host)
        in
        Dns.Server.start scn.public_bind;
        r)
  in
  match r with
  | Error (Hns.Errors.Nsm_error m) ->
      check_bool "mentions the backend" true
        (String.length m > 0)
  | _ -> Alcotest.fail "backend outage must surface as an NSM error"

let suite =
  [
    Alcotest.test_case "broadcast finds owner" `Quick broadcast_finds_owner;
    Alcotest.test_case "broadcast nobody answers" `Quick broadcast_nobody_answers;
    Alcotest.test_case "broadcast costs every host" `Quick broadcast_costs_every_host;
    Alcotest.test_case "lookups survive loss" `Quick import_survives_packet_loss;
    Alcotest.test_case "dead meta server" `Quick find_nsm_times_out_when_meta_dead;
    Alcotest.test_case "cache survives meta outage" `Quick
      cached_client_survives_meta_outage;
    Alcotest.test_case "dead NSM" `Quick import_times_out_when_nsm_dead;
    Alcotest.test_case "dead backend" `Quick nsm_reports_backend_outage;
  ]

(* --- crashing procedures must not kill the simulation --- *)

let remote_nsm_backend_outage_is_survivable () =
  (* The REMOTE binding NSM's backend (public BIND) dies. Its lookup
     raises inside the NSM server process; the server must answer with
     a remote error, not crash the engine. *)
  let scn = Workload.Scenario.build () in
  let r =
    Workload.Scenario.in_sim scn (fun () ->
        let hns = Workload.Scenario.new_hns scn ~on:scn.client_stack in
        (* FindNSM first (it needs BIND for the host-address mapping),
           then kill the backend before calling the NSM. *)
        let resolved =
          get_ok ~msg:"find"
            (Hns.Client.find_nsm hns ~context:scn.bind_context
               ~query_class:Hns.Query_class.hrpc_binding)
        in
        Dns.Server.stop scn.public_bind;
        let r =
          Hns.Nsm_intf.call scn.client_stack
            (Hns.Nsm_intf.Remote resolved.Hns.Find_nsm.binding)
            ~payload_ty:Hns.Nsm_intf.binding_payload_ty ~service:scn.service_name
            ~hns_name:(Hns.Hns_name.make ~context:scn.bind_context ~name:scn.service_host)
        in
        Dns.Server.start scn.public_bind;
        r)
  in
  (* Either the NSM's SYSTEM_ERR-style crash report or a client-side
     timeout is acceptable; what matters is that the NSM server (and
     the simulation) survived. The in_sim wrapper would have raised
     Process_failure otherwise. *)
  match r with
  | Error (Hns.Errors.Rpc_error (Rpc.Control.Protocol_error _))
  | Error (Hns.Errors.Rpc_error (Rpc.Control.Timeout _)) ->
      ()
  | Ok _ -> Alcotest.fail "backend was down; the call cannot succeed"
  | Error e -> Alcotest.failf "unexpected error: %s" (Hns.Errors.to_string e)

let crashing_sunrpc_proc_returns_system_err () =
  let w = make_world () in
  let sign = Wire.Idl.signature ~arg:Wire.Idl.T_void ~res:Wire.Idl.T_void in
  let r =
    in_sim w (fun () ->
        let server = Rpc.Sunrpc.create w.stacks.(0) () in
        Rpc.Sunrpc.register server ~prog:44 ~vers:1 ~procnum:1 ~sign (fun _ ->
            failwith "deliberate crash");
        Rpc.Sunrpc.start server;
        let first =
          Rpc.Sunrpc.call w.stacks.(1) ~dst:(Rpc.Sunrpc.addr server) ~prog:44 ~vers:1
            ~procnum:1 ~sign Wire.Value.Void
        in
        (* the server is still alive for the next call *)
        let second =
          Rpc.Sunrpc.call w.stacks.(1) ~dst:(Rpc.Sunrpc.addr server) ~prog:44 ~vers:1
            ~procnum:0 ~sign Wire.Value.Void
        in
        (first, second))
  in
  (match fst r with
  | Error (Rpc.Control.Protocol_error _) -> ()
  | _ -> Alcotest.fail "crash should surface as a remote system error");
  check_bool "server survives" true (snd r = Ok Wire.Value.Void)

let crashing_raw_handler_stays_silent () =
  let w = make_world () in
  let r =
    in_sim w (fun () ->
        let _stop =
          Rpc.Rawrpc.serve w.stacks.(0) ~port:7070
            (fun ~src:_ payload ->
              if payload = "boom" then failwith "handler crash" else Some "ok")
            ()
        in
        let dst = Transport.Address.make (Transport.Netstack.ip w.stacks.(0)) 7070 in
        let crash = Rpc.Rawrpc.call w.stacks.(1) ~dst ~timeout:30.0 ~attempts:1 "boom" in
        let normal = Rpc.Rawrpc.call w.stacks.(1) ~dst "fine" in
        (crash, normal))
  in
  check_bool "crash times out" true
    (match fst r with Error (Rpc.Control.Timeout _) -> true | _ -> false);
  check_bool "server survives" true (snd r = Ok "ok")

let failure_extra =
  [
    Alcotest.test_case "remote NSM backend outage" `Quick
      remote_nsm_backend_outage_is_survivable;
    Alcotest.test_case "sunrpc crash -> SYSTEM_ERR" `Quick
      crashing_sunrpc_proc_returns_system_err;
    Alcotest.test_case "raw crash stays silent" `Quick crashing_raw_handler_stays_silent;
  ]

let suite = suite @ failure_extra
