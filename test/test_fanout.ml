(* Tests for the partitioned, replicated meta-store: context-delegated
   partitions behind referrals, IXFR-chained replica trees, durable
   replica re-bootstrap, and read-your-writes pinning over the
   load-aware replica routing. *)

open Helpers

let meta_port = Transport.Address.Well_known.hns_meta

let str_record ?(ttl = 3600l) key v =
  Dns.Rr.make ~ttl key
    (Dns.Rr.Unspec
       (Wire.Xdr.to_string Hns.Meta_schema.string_ty (Wire.Value.str v)))

let ctx_key name = Hns.Meta_schema.context_key name

let mk_meta_client ?replica_set ?read_your_writes stack ~meta_server =
  Hns.Meta_client.create stack ~meta_server ?replica_set ?read_your_writes
    ~cache:(Hns.Cache.create ~mode:Hns.Cache.Demarshalled ())
    ()

let get_ok_meta ~msg = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" msg (Hns.Errors.to_string e)

let read_str client key =
  Hns.Cache.flush (Hns.Meta_client.cache client);
  match
    Hns.Meta_client.lookup client ~key ~ty:Hns.Meta_schema.string_ty
  with
  | Ok (Some v) -> Some (Wire.Value.get_str v)
  | Ok None -> None
  | Error e -> Alcotest.failf "lookup failed: %s" (Hns.Errors.to_string e)

(* --- delegation: resolves chase referrals once, then ride the cut --- *)

(* A root meta server delegating two partitions, each holding one
   context record. All servers share the meta port: referral glue
   carries only IPs. *)
let partitioned_world w =
  let root = Dns.Server.create w.stacks.(0) ~port:meta_port ~allow_update:true () in
  Dns.Server.add_zone root
    (Dns.Zone.simple ~origin:Hns.Meta_schema.zone_origin []);
  Dns.Server.start root;
  let partition i stack value =
    let label = Printf.sprintf "p%d" i in
    let cut = Hns.Meta_schema.partition_cut label in
    let zone =
      Dns.Zone.simple ~origin:cut
        [ str_record (ctx_key (Printf.sprintf "c0.%s" label)) value ]
    in
    let primary = Dns.Server.create stack ~port:meta_port ~allow_update:true () in
    Dns.Server.add_zone primary zone;
    Dns.Server.start primary;
    (label, cut, primary)
  in
  let p0 = partition 0 w.stacks.(1) "UW-BIND" in
  let p1 = partition 1 w.stacks.(2) "XEROX-CH" in
  let admin = mk_meta_client w.stacks.(3) ~meta_server:(Dns.Server.addr root) in
  List.iter
    (fun (label, _, primary) ->
      get_ok_meta ~msg:"register_partition"
        (Hns.Admin.register_partition admin ~label
           ~primary:(Dns.Server.addr primary) ~replicas:[] ()))
    [ p0; p1 ];
  (root, p0, p1)

let resolve_crosses_partitions_and_caches_the_cut () =
  let w = make_world ~hosts:5 () in
  let v0, v1, chases, v0_again, chases_after, hits, cuts =
    in_sim w (fun () ->
        let root, (_, cut0, _), (_, cut1, _) = partitioned_world w in
        let client =
          mk_meta_client w.stacks.(4) ~meta_server:(Dns.Server.addr root)
        in
        let v0 = read_str client (ctx_key "c0.p0") in
        let v1 = read_str client (ctx_key "c0.p1") in
        let chases = Hns.Meta_client.referral_chases client in
        (* Cold again (cache flushed), but the cuts are learned: the
           reads go straight to the owning partitions. *)
        let v0_again = read_str client (ctx_key "c0.p0") in
        ignore (read_str client (ctx_key "c0.p1"));
        let cuts =
          List.map (fun (cut, _) -> cut) (Hns.Meta_client.partitions client)
        in
        ( v0,
          v1,
          chases,
          v0_again,
          Hns.Meta_client.referral_chases client,
          Hns.Meta_client.referral_hits client,
          List.map
            (fun c ->
              List.exists (fun cut -> Dns.Name.equal cut c) cuts)
            [ cut0; cut1 ] ))
  in
  check (Alcotest.option Alcotest.string) "partition 0 record" (Some "UW-BIND") v0;
  check (Alcotest.option Alcotest.string) "partition 1 record" (Some "XEROX-CH") v1;
  check_int "one chase per partition" 2 chases;
  check (Alcotest.option Alcotest.string) "re-read via the cached cut"
    (Some "UW-BIND") v0_again;
  check_int "no further chases" 2 chases_after;
  check_bool "repeat reads hit the cached cut" true (hits >= 2);
  check_bool "both cuts cached" true (List.for_all Fun.id cuts)

(* --- chained tree: one update wakes the levels in order --- *)

let chained_tree_converges_level_by_level () =
  let w = make_world ~hosts:5 () in
  let zname = Dns.Name.of_string "z" in
  let serial_ok, kicks, depths, fulls =
    in_sim w (fun () ->
        let zone =
          Dns.Zone.simple ~origin:zname
            [ Dns.Rr.make (Dns.Name.of_string "h.z") (Dns.Rr.A 7l) ]
        in
        let primary = Dns.Server.create w.stacks.(0) ~allow_update:true () in
        Dns.Server.add_zone primary zone;
        Dns.Server.start primary;
        (* A 3-deep chain (k = 1): r1 pulls from the primary, r2 from
           r1, r3 from r2, each NOTIFY-wired to its parent. The poll
           backstop sits a minute out, so sub-minute convergence is
           push-driven, level by level. *)
        let attach_level parent depth stack =
          let server = Dns.Server.create stack () in
          Dns.Server.start server;
          let sec =
            Dns.Secondary.attach server ~primary:(Dns.Server.addr parent)
              ~zone:zname ~refresh_ms:60_000.0 ~mode:Dns.Secondary.Ixfr
              ~chain_depth:depth ()
          in
          Dns.Server.register_notify parent (Dns.Server.addr server);
          (server, sec)
        in
        let s1, sec1 = attach_level primary 1 w.stacks.(1) in
        let s2, sec2 = attach_level s1 2 w.stacks.(2) in
        let _s3, sec3 = attach_level s2 3 w.stacks.(3) in
        (match
           Dns.Update.add_rr w.stacks.(4) ~server:(Dns.Server.addr primary)
             ~zone:zname
             (Dns.Rr.make (Dns.Name.of_string "new.z") (Dns.Rr.A 9l))
         with
        | Ok () -> ()
        | Error e -> Alcotest.failf "update failed: %a" Dns.Update.pp_error e);
        Sim.Engine.sleep 2_000.0;
        let target = Dns.Zone.serial zone in
        let secs = [ sec1; sec2; sec3 ] in
        let r =
          ( List.for_all
              (fun s -> Int32.equal (Dns.Secondary.serial s) target)
              secs,
            List.map Dns.Secondary.notify_kicks secs,
            List.map Dns.Secondary.chain_depth secs,
            List.map Dns.Secondary.full_transfers secs )
        in
        List.iter Dns.Secondary.detach secs;
        r)
  in
  check_bool "every level converged inside the poll window" true serial_ok;
  check (Alcotest.list Alcotest.int) "one cascaded NOTIFY per level"
    [ 1; 1; 1 ] kicks;
  check (Alcotest.list Alcotest.int) "depths recorded down the chain"
    [ 1; 2; 3 ] depths;
  check (Alcotest.list Alcotest.int) "the update travelled as deltas"
    [ 1; 1; 1 ] fulls

(* --- replica crash + durable re-bootstrap, no failed resolves --- *)

let crash_rebootstrap_serves_through () =
  let w = make_world ~hosts:4 () in
  let failures, routed_mid, routed_after, recovered_full, serial_ok =
    in_sim w (fun () ->
        let zone =
          Dns.Zone.simple ~origin:Hns.Meta_schema.zone_origin
            [ str_record (ctx_key "alpha") "UW-BIND" ]
        in
        let primary = Dns.Server.create w.stacks.(0) ~allow_update:true () in
        Dns.Server.add_zone primary zone;
        Dns.Server.start primary;
        let replica = Dns.Server.create w.stacks.(1) () in
        Dns.Server.start replica;
        let sec =
          Dns.Secondary.attach replica ~primary:(Dns.Server.addr primary)
            ~zone:Hns.Meta_schema.zone_origin ~refresh_ms:60_000.0 ()
        in
        Dns.Server.register_notify primary (Dns.Server.addr replica);
        (* The replica spills its copy to a durable store, as a
           production replica would; the crash wipes volatile state
           and recovery rebuilds from snapshot + WAL tail. *)
        let disk = Store.Disk.create () in
        let dur =
          match Dns.Server.zones replica with
          | [ z ] -> Dns.Durable.attach disk z
          | _ -> Alcotest.fail "replica does not hold exactly its copy"
        in
        let rs =
          Dns.Replica_set.create w.stacks.(2)
            ~zone:Hns.Meta_schema.zone_origin
            ~primary:(Dns.Server.addr primary)
            ~replicas:[ Dns.Server.addr replica ]
            ()
        in
        let client =
          mk_meta_client w.stacks.(2) ~replica_set:rs
            ~meta_server:(Dns.Server.addr primary)
        in
        let admin =
          mk_meta_client w.stacks.(3) ~meta_server:(Dns.Server.addr primary)
        in
        let failures = ref 0 in
        let read_burst n gap =
          for _ = 1 to n do
            Hns.Cache.flush (Hns.Meta_client.cache client);
            (match
               Hns.Meta_client.lookup client ~key:(ctx_key "alpha")
                 ~ty:Hns.Meta_schema.string_ty
             with
            | Ok (Some _) -> ()
            | Ok None | Error _ -> incr failures);
            Sim.Engine.sleep gap
          done
        in
        read_burst 6 50.0;
        (* A write lands a delta in the replica's durable log before
           the crash. *)
        get_ok_meta ~msg:"pre-crash store"
          (Hns.Meta_client.store admin ~key:(ctx_key "beta")
             ~ty:Hns.Meta_schema.string_ty (Wire.Value.str "SUN-YP"));
        Sim.Engine.sleep 1_000.0;
        (* Crash: the replica process dies mid-traffic. Reads keep
           flowing — the first one eats the timeout, quarantines the
           member, and fails over to the primary inside the same
           lookup. *)
        Dns.Secondary.detach sec;
        Dns.Server.stop replica;
        Dns.Durable.detach dur;
        Store.Disk.crash disk;
        read_burst 6 400.0;
        let routed_mid = Dns.Replica_set.routed rs in
        (* Re-bootstrap from the durable image: a fresh server on the
           same address adopts the recovered zone and catches up by
           IXFR from its durable serial — no full re-transfer. *)
        let rec_zone, recovered_full =
          match Dns.Durable.recover disk with
          | None -> Alcotest.fail "durable image did not survive the crash"
          | Some r -> (r.Dns.Durable.zone, 0)
        in
        let replica' = Dns.Server.create w.stacks.(1) () in
        Dns.Server.start replica';
        let sec' =
          Dns.Secondary.attach replica' ~primary:(Dns.Server.addr primary)
            ~zone:Hns.Meta_schema.zone_origin ~refresh_ms:60_000.0
            ~recovered:rec_zone ()
        in
        Dns.Server.register_notify primary (Dns.Server.addr replica');
        (* Past the quarantine window the set probes the member again
           and routes reads back onto it. *)
        Sim.Engine.sleep 3_100.0;
        Dns.Replica_set.refresh_serials rs;
        read_burst 6 50.0;
        let r =
          ( !failures,
            routed_mid,
            Dns.Replica_set.routed rs,
            recovered_full + Dns.Secondary.full_transfers sec',
            Int32.equal (Dns.Secondary.serial sec') (Dns.Zone.serial zone) )
        in
        Dns.Secondary.detach sec';
        r)
  in
  check_int "no resolve failed across crash and recovery" 0 failures;
  check_bool "reads kept routing to the replica again" true
    (routed_after > routed_mid);
  check_int "durable bootstrap needed no full transfer" 0 recovered_full;
  check_bool "recovered replica caught up to the primary" true serial_ok

(* --- read-your-writes pinning, through the fan-out harness --- *)

let rww_pinning_closes_the_staleness_window () =
  let pinned = Workload.Fanout.run (Workload.Fanout.rww_config ~pinned:true ()) in
  let unpinned =
    Workload.Fanout.run (Workload.Fanout.rww_config ~pinned:false ())
  in
  check_int "no failed reads (pinned)" 0 pinned.Workload.Fanout.failed_reads;
  check_int "no failed reads (unpinned)" 0 unpinned.Workload.Fanout.failed_reads;
  check_int "pinning: zero stale own-write reads" 0
    pinned.Workload.Fanout.stale_reads;
  check_bool "without pinning the staleness window is observable" true
    (unpinned.Workload.Fanout.stale_reads > 0)

(* --- property: routed reads == primary reads once serials converge --- *)

let gen_writes =
  (* Write scripts over a small context space; keys 4-5 are never
     written, so the equivalence also covers definite absence. *)
  QCheck.Gen.(
    list_size (int_range 1 10)
      (map2 (fun k v -> (k mod 4, v mod 1000)) small_int small_int))

let arb_writes =
  QCheck.make
    ~print:(fun l ->
      String.concat ";"
        (List.map (fun (k, v) -> Printf.sprintf "k%d:=%d" k v) l))
    gen_writes

let routed_matches_primary writes =
  let w = make_world ~hosts:4 () in
  in_sim w (fun () ->
      let zone =
        Dns.Zone.simple ~origin:Hns.Meta_schema.zone_origin
          [ str_record (ctx_key "k0") "seed" ]
      in
      let primary = Dns.Server.create w.stacks.(0) ~allow_update:true () in
      Dns.Server.add_zone primary zone;
      Dns.Server.start primary;
      let replica = Dns.Server.create w.stacks.(1) () in
      Dns.Server.start replica;
      let sec =
        Dns.Secondary.attach replica ~primary:(Dns.Server.addr primary)
          ~zone:Hns.Meta_schema.zone_origin ~refresh_ms:60_000.0 ()
      in
      Dns.Server.register_notify primary (Dns.Server.addr replica);
      let direct =
        mk_meta_client w.stacks.(3) ~meta_server:(Dns.Server.addr primary)
      in
      List.iter
        (fun (k, v) ->
          get_ok_meta ~msg:"property store"
            (Hns.Meta_client.store direct
               ~key:(ctx_key (Printf.sprintf "k%d" k))
               ~ty:Hns.Meta_schema.string_ty
               (Wire.Value.str (string_of_int v))))
        writes;
      (* NOTIFY + IXFR settle well inside this window. *)
      Sim.Engine.sleep 2_000.0;
      let rs =
        Dns.Replica_set.create w.stacks.(2)
          ~zone:Hns.Meta_schema.zone_origin
          ~primary:(Dns.Server.addr primary)
          ~replicas:[ Dns.Server.addr replica ]
          ()
      in
      Dns.Replica_set.refresh_serials rs;
      let routed =
        mk_meta_client w.stacks.(2) ~replica_set:rs
          ~meta_server:(Dns.Server.addr primary)
      in
      let agree =
        List.for_all
          (fun k ->
            let key = ctx_key (Printf.sprintf "k%d" k) in
            match (read_str routed key, read_str direct key) with
            | Some a, Some b -> String.equal a b
            | None, None -> true
            | _ -> false)
          [ 0; 1; 2; 3; 4; 5 ]
      in
      let r = agree && Dns.Replica_set.routed rs > 0 in
      Dns.Secondary.detach sec;
      r)

let routed_equivalence_prop =
  QCheck.Test.make
    ~name:"routed reads == primary reads once serials converge" ~count:20
    arb_writes routed_matches_primary

(* --- determinism: same config, byte-identical report --- *)

let render_report (r : Workload.Fanout.report) =
  let rows =
    String.concat "\n"
      (List.map
         (fun (name, s) ->
           Printf.sprintf "%s n=%d mean=%.6f p50=%.6f p99=%.6f" name
             (Sim.Stats.count s) (Sim.Stats.mean s)
             (Sim.Stats.percentile s 50.0)
             (Sim.Stats.percentile s 99.0))
         (Workload.Fanout.report_rows r))
  in
  Format.asprintf "%a|events=%d|routed=%d|chases=%d|hits=%d\n%s"
    Workload.Fanout.pp_report r r.Workload.Fanout.sim_events
    r.Workload.Fanout.routed_reads r.Workload.Fanout.referral_chases
    r.Workload.Fanout.referral_hits rows

let fanout_runs_are_deterministic () =
  let cfg =
    Workload.Fanout.point ~label:"det" ~replicas:2 ~clients:3
      ~reads_per_client:5 ()
  in
  let a = render_report (Workload.Fanout.run cfg) in
  let b = render_report (Workload.Fanout.run cfg) in
  check_string "two identical runs, one report" a b

let suite =
  [
    Alcotest.test_case "resolve crosses partitions and caches the cut" `Quick
      resolve_crosses_partitions_and_caches_the_cut;
    Alcotest.test_case "chained tree converges level by level" `Quick
      chained_tree_converges_level_by_level;
    Alcotest.test_case "crash + durable re-bootstrap serves through" `Quick
      crash_rebootstrap_serves_through;
    Alcotest.test_case "rww pinning closes the staleness window" `Quick
      rww_pinning_closes_the_staleness_window;
    qtest routed_equivalence_prop;
    Alcotest.test_case "fanout runs are deterministic" `Quick
      fanout_runs_are_deterministic;
  ]
