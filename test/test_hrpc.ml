(* Tests for HRPC: the five-component model, bindings, emulation of
   native peers, mix-and-match suites, and binding protocols. *)

open Helpers

let echo_sign = Wire.Idl.signature ~arg:Wire.Idl.T_string ~res:Wire.Idl.T_string

(* --- component naming --- *)

let suite_names () =
  check_string "sun suite" "xdr/udp/sunrpc" (Hrpc.Component.suite_name Hrpc.Component.sunrpc_suite);
  check_string "courier suite" "courier/tcp/courier"
    (Hrpc.Component.suite_name Hrpc.Component.courier_suite);
  check_bool "parse transport" true (Hrpc.Component.transport_of_name "tcp" = Some Hrpc.Component.T_tcp);
  check_bool "parse control" true (Hrpc.Component.control_of_name "raw" = Some Hrpc.Component.C_raw);
  check_bool "unknown" true (Hrpc.Component.control_of_name "xns" = None)

(* --- binding serialization --- *)

let all_suites =
  [
    Hrpc.Component.sunrpc_suite;
    Hrpc.Component.courier_suite;
    Hrpc.Component.raw_udp_suite;
    { Hrpc.Component.data_rep = Wire.Data_rep.Courier; transport = T_udp; control = C_sunrpc };
    { Hrpc.Component.data_rep = Wire.Data_rep.Xdr; transport = T_tcp; control = C_courier };
  ]

let arb_binding =
  let gen =
    QCheck.Gen.(
      oneofl all_suites >>= fun suite ->
      map2
        (fun ip port ->
          Hrpc.Binding.make ~suite
            ~server:(Transport.Address.make (Int32.of_int ip) (port land 0xFFFF))
            ~prog:(port * 3) ~vers:(1 + (port mod 5)))
        int (int_range 1 60000))
  in
  QCheck.make gen ~print:(Format.asprintf "%a" Hrpc.Binding.pp)

let binding_bytes_roundtrip =
  QCheck.Test.make ~name:"binding bytes roundtrip" ~count:200 arb_binding (fun b ->
      Hrpc.Binding.equal b (Hrpc.Binding.of_bytes (Hrpc.Binding.to_bytes b)))

let binding_value_roundtrip =
  QCheck.Test.make ~name:"binding value roundtrip" ~count:200 arb_binding (fun b ->
      Hrpc.Binding.equal b (Hrpc.Binding.of_value (Hrpc.Binding.to_value b)))

let binding_rejects_garbage () =
  match Hrpc.Binding.of_bytes "nonsense" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "garbage should fail"

(* --- hrpc server/client across suites --- *)

let exportable_suites =
  List.filter (fun s -> s.Hrpc.Component.control <> Hrpc.Component.C_raw) all_suites

let hrpc_echo_all_suites () =
  List.iter
    (fun suite ->
      let w = make_world () in
      let r =
        in_sim w (fun () ->
            let server =
              Hrpc.Server.create w.stacks.(0) ~suite ~prog:700 ~vers:2 ()
            in
            Hrpc.Server.register server ~procnum:1 ~sign:echo_sign (fun v -> v);
            Hrpc.Server.start server;
            Hrpc.Client.call w.stacks.(1) (Hrpc.Server.binding server) ~procnum:1
              ~sign:echo_sign (Wire.Value.Str "mix"))
      in
      if r <> Ok (Wire.Value.Str "mix") then
        Alcotest.failf "suite %s failed" (Hrpc.Component.suite_name suite))
    exportable_suites

let hrpc_raw_export_rejected () =
  let w = make_world () in
  match
    Hrpc.Server.create w.stacks.(0) ~suite:Hrpc.Component.raw_udp_suite ~prog:1 ~vers:1 ()
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "raw suite export should be rejected"

(* Emulation: an HRPC client calls a NATIVE Sun RPC server; an HRPC
   server is called by a NATIVE Sun RPC client. Same for Courier.
   This is the paper's core claim about HRPC: "looks to each existing
   RPC mechanism exactly the same as a homogeneous peer". *)

let hrpc_emulates_sun_client () =
  let w = make_world () in
  let r =
    in_sim w (fun () ->
        let native = Rpc.Sunrpc.create w.stacks.(0) () in
        Rpc.Sunrpc.register native ~prog:301 ~vers:1 ~procnum:1 ~sign:echo_sign (fun v -> v);
        Rpc.Sunrpc.start native;
        let binding =
          Hrpc.Binding.make ~suite:Hrpc.Component.sunrpc_suite
            ~server:(Rpc.Sunrpc.addr native) ~prog:301 ~vers:1
        in
        Hrpc.Client.call w.stacks.(1) binding ~procnum:1 ~sign:echo_sign
          (Wire.Value.Str "native server"))
  in
  check_bool "hrpc -> native sun" true (r = Ok (Wire.Value.Str "native server"))

let hrpc_emulates_sun_server () =
  let w = make_world () in
  let r =
    in_sim w (fun () ->
        let server =
          Hrpc.Server.create w.stacks.(0) ~suite:Hrpc.Component.sunrpc_suite ~prog:302
            ~vers:1 ()
        in
        Hrpc.Server.register server ~procnum:1 ~sign:echo_sign (fun v -> v);
        Hrpc.Server.start server;
        (* Call it with the NATIVE Sun RPC client. *)
        Rpc.Sunrpc.call w.stacks.(1)
          ~dst:(Hrpc.Server.binding server).Hrpc.Binding.server ~prog:302 ~vers:1
          ~procnum:1 ~sign:echo_sign (Wire.Value.Str "native client"))
  in
  check_bool "native sun -> hrpc" true (r = Ok (Wire.Value.Str "native client"))

let hrpc_emulates_courier_client () =
  let w = make_world () in
  let r =
    in_sim w (fun () ->
        let native = Rpc.Courier_rpc.create w.stacks.(0) () in
        Rpc.Courier_rpc.register native ~prog:2 ~vers:3 ~procnum:4 ~sign:echo_sign
          (fun v -> v);
        Rpc.Courier_rpc.start native;
        let binding =
          Hrpc.Binding.make ~suite:Hrpc.Component.courier_suite
            ~server:(Rpc.Courier_rpc.addr native) ~prog:2 ~vers:3
        in
        Hrpc.Client.call w.stacks.(1) binding ~procnum:4 ~sign:echo_sign
          (Wire.Value.Str "xerox"))
  in
  check_bool "hrpc -> native courier" true (r = Ok (Wire.Value.Str "xerox"))

let hrpc_emulates_courier_server () =
  let w = make_world () in
  let r =
    in_sim w (fun () ->
        let server =
          Hrpc.Server.create w.stacks.(0) ~suite:Hrpc.Component.courier_suite ~prog:2
            ~vers:3 ()
        in
        Hrpc.Server.register server ~procnum:1 ~sign:echo_sign (fun v -> v);
        Hrpc.Server.start server;
        Rpc.Courier_rpc.call_once w.stacks.(1)
          ~dst:(Hrpc.Server.binding server).Hrpc.Binding.server ~prog:2 ~vers:3
          ~procnum:1 ~sign:echo_sign (Wire.Value.Str "native courier client"))
  in
  check_bool "native courier -> hrpc" true (r = Ok (Wire.Value.Str "native courier client"))

let hrpc_call_raw_to_bind () =
  (* call_raw speaks a server's native format: a DNS query here. *)
  let w = make_world () in
  let answers =
    in_sim w (fun () ->
        let zone =
          Dns.Zone.simple ~origin:(Dns.Name.of_string "z")
            [ Dns.Rr.make (Dns.Name.of_string "h.z") (Dns.Rr.A 9l) ]
        in
        let server = Dns.Server.create w.stacks.(0) () in
        Dns.Server.add_zone server zone;
        Dns.Server.start server;
        let binding =
          Hrpc.Binding.make ~suite:Hrpc.Component.raw_udp_suite
            ~server:(Dns.Server.addr server) ~prog:0 ~vers:0
        in
        let request = Dns.Msg.encode (Dns.Msg.query ~id:5 (Dns.Name.of_string "h.z") Dns.Rr.T_a) in
        match Hrpc.Client.call_raw w.stacks.(1) binding request with
        | Ok payload -> (Dns.Msg.decode payload).Dns.Msg.answers
        | Error e -> Alcotest.failf "raw call failed: %a" Rpc.Control.pp_error e)
  in
  check_int "one answer" 1 (List.length answers)

let hrpc_wrong_prog () =
  let w = make_world () in
  let r =
    in_sim w (fun () ->
        let server =
          Hrpc.Server.create w.stacks.(0) ~suite:Hrpc.Component.sunrpc_suite ~prog:10
            ~vers:1 ()
        in
        Hrpc.Server.register server ~procnum:1 ~sign:echo_sign (fun v -> v);
        Hrpc.Server.start server;
        let b = Hrpc.Server.binding server in
        Hrpc.Client.call w.stacks.(1) { b with Hrpc.Binding.prog = 11 } ~procnum:1
          ~sign:echo_sign (Wire.Value.Str "x"))
  in
  check_bool "prog unavailable" true (r = Error Rpc.Control.Prog_unavailable)

(* Regression: a call that exhausts every attempt must surface
   [Timeout] carrying the *cumulative* elapsed time across all
   attempts and pauses — not the last attempt's deadline. *)
let hrpc_timeout_cumulative_elapsed () =
  let w = make_world () in
  let policy =
    {
      Rpc.Control.default_policy with
      Rpc.Control.attempts = 3;
      attempt_timeout_ms = 100.0;
      timeout_multiplier = 2.0;
      backoff_base_ms = 50.0;
      backoff_multiplier = 1.0;
      backoff_cap_ms = 50.0;
      jitter_ratio = 0.0;
    }
  in
  (* Nobody listens on the target port: every attempt must run its
     full deadline. Expected elapsed: 100 + 50 + 200 + 50 + 400. *)
  let dead =
    Hrpc.Binding.make ~suite:Hrpc.Component.sunrpc_suite
      ~server:(Transport.Address.make (Transport.Netstack.ip w.stacks.(0)) 19999)
      ~prog:1 ~vers:1
  in
  let r, virtual_elapsed =
    in_sim w (fun () ->
        let t0 = Sim.Engine.time () in
        let r =
          Hrpc.Client.call w.stacks.(1) dead ~procnum:1 ~sign:echo_sign ~policy
            (Wire.Value.Str "void")
        in
        (r, Sim.Engine.time () -. t0))
  in
  match r with
  | Error (Rpc.Control.Timeout { elapsed_ms }) ->
      check_float_near "elapsed is the whole call, not one deadline" 800.0
        elapsed_ms;
      check_float_near "elapsed matches the virtual clock" virtual_elapsed
        elapsed_ms
  | Error e -> Alcotest.failf "expected Timeout, got %a" Rpc.Control.pp_error e
  | Ok _ -> Alcotest.fail "call to a dead port cannot succeed"

(* --- binding protocols --- *)

let bind_protocol_static () =
  let w = make_world () in
  let b =
    Hrpc.Binding.make ~suite:Hrpc.Component.sunrpc_suite
      ~server:(Transport.Address.make 1l 2) ~prog:3 ~vers:4
  in
  let r = in_sim w (fun () -> Hrpc.Bind_protocol.resolve w.stacks.(0) (Hrpc.Bind_protocol.Static b)) in
  check_bool "static" true (r = Ok b)

let bind_protocol_portmapper () =
  let w = make_world () in
  let r =
    in_sim w (fun () ->
        let pm = Rpc.Portmap.start w.stacks.(0) in
        Rpc.Portmap.set pm ~prog:100005 ~vers:1 ~protocol:Rpc.Portmap.P_udp ~port:888;
        Hrpc.Bind_protocol.resolve w.stacks.(1)
          (Hrpc.Bind_protocol.Sun_portmapper
             {
               host = Transport.Netstack.ip w.stacks.(0);
               prog = 100005;
               vers = 1;
               suite = Hrpc.Component.sunrpc_suite;
             }))
  in
  match r with
  | Ok b ->
      check_int "resolved port" 888 b.Hrpc.Binding.server.Transport.Address.port;
      check_int "prog carried" 100005 b.Hrpc.Binding.prog
  | Error e -> Alcotest.failf "portmapper binding failed: %a" Rpc.Control.pp_error e

let bind_protocol_clearinghouse () =
  let w = make_world () in
  let cred =
    { Clearinghouse.Ch_proto.user = Clearinghouse.Ch_name.of_string "hcs:parc:xerox";
      password = "" }
  in
  let expected =
    Hrpc.Binding.make ~suite:Hrpc.Component.courier_suite
      ~server:(Transport.Address.make 7l 9) ~prog:5 ~vers:6
  in
  let r =
    in_sim w (fun () ->
        let ch = Clearinghouse.Ch_server.create w.stacks.(0) () in
        Clearinghouse.Ch_db.store (Clearinghouse.Ch_server.db ch)
          (Clearinghouse.Ch_name.of_string "printsrv:parc:xerox")
          (Clearinghouse.Property.item Clearinghouse.Property.Id.service_binding
             (Hrpc.Binding.to_bytes expected));
        Clearinghouse.Ch_server.start ch;
        Hrpc.Bind_protocol.resolve w.stacks.(1)
          (Hrpc.Bind_protocol.Clearinghouse_binding
             {
               ch = Clearinghouse.Ch_server.addr ch;
               service = Clearinghouse.Ch_name.of_string "printsrv:parc:xerox";
               credentials = cred;
             }))
  in
  check_bool "clearinghouse binding" true (r = Ok expected)

(* --- typed stubs --- *)

let stub_typed_call () =
  let w = make_world () in
  let double =
    Hrpc.Stub.proc ~procnum:1
      ~sign:(Wire.Idl.signature ~arg:Wire.Idl.T_int ~res:Wire.Idl.T_int)
      ~encode_arg:(fun i -> Wire.Value.int i)
      ~decode_res:Wire.Value.get_int
  in
  let r =
    in_sim w (fun () ->
        let server =
          Hrpc.Server.create w.stacks.(0) ~suite:Hrpc.Component.sunrpc_suite ~prog:11
            ~vers:1 ()
        in
        Hrpc.Server.register server ~procnum:1
          ~sign:(Wire.Idl.signature ~arg:Wire.Idl.T_int ~res:Wire.Idl.T_int)
          (fun v -> Wire.Value.int (2 * Wire.Value.get_int v));
        Hrpc.Server.start server;
        Hrpc.Stub.call w.stacks.(1) (Hrpc.Server.binding server) double 21)
  in
  check_bool "typed result" true (r = Ok 42)

let suite =
  [
    Alcotest.test_case "suite names" `Quick suite_names;
    qtest binding_bytes_roundtrip;
    qtest binding_value_roundtrip;
    Alcotest.test_case "binding garbage" `Quick binding_rejects_garbage;
    Alcotest.test_case "echo across suites" `Quick hrpc_echo_all_suites;
    Alcotest.test_case "raw export rejected" `Quick hrpc_raw_export_rejected;
    Alcotest.test_case "emulate sun (client)" `Quick hrpc_emulates_sun_client;
    Alcotest.test_case "emulate sun (server)" `Quick hrpc_emulates_sun_server;
    Alcotest.test_case "emulate courier (client)" `Quick hrpc_emulates_courier_client;
    Alcotest.test_case "emulate courier (server)" `Quick hrpc_emulates_courier_server;
    Alcotest.test_case "raw call to BIND" `Quick hrpc_call_raw_to_bind;
    Alcotest.test_case "wrong prog" `Quick hrpc_wrong_prog;
    Alcotest.test_case "timeout carries cumulative elapsed" `Quick
      hrpc_timeout_cumulative_elapsed;
    Alcotest.test_case "static binding" `Quick bind_protocol_static;
    Alcotest.test_case "portmapper binding" `Quick bind_protocol_portmapper;
    Alcotest.test_case "clearinghouse binding" `Quick bind_protocol_clearinghouse;
    Alcotest.test_case "typed stub" `Quick stub_typed_call;
  ]
