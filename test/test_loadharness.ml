(* The open-loop load harness: schedule determinism, open- vs
   closed-loop queueing visibility, arrival-process statistics, the
   Hotrank scoring laws behind the flash-crowd A/B, and a sim-event
   budget guard on the harness itself. *)

open Helpers
module O = Workload.Openloop

let rng seed = Sim.Rng.create ~seed:(Int64.of_int seed)

(* --- arrival schedules ------------------------------------------- *)

let schedule_deterministic () =
  let arr = O.Poisson { rate_per_s = 50.0 } in
  let a = O.schedule arr ~rng:(rng 5) ~duration_ms:30_000.0 in
  let b = O.schedule arr ~rng:(rng 5) ~duration_ms:30_000.0 in
  check_bool "same seed, same schedule" true (a = b);
  check_string "same seed, same digest" (O.schedule_digest a)
    (O.schedule_digest b);
  let c = O.schedule arr ~rng:(rng 6) ~duration_ms:30_000.0 in
  check_bool "different seed, different schedule" false (a = c);
  check_bool "different seed, different digest" false
    (O.schedule_digest a = O.schedule_digest c);
  check_bool "offsets strictly increasing" true
    (let rec mono = function
       | x :: (y :: _ as rest) -> x < y && mono rest
       | _ -> true
     in
     mono a)

let poisson_mean () =
  (* Interarrival mean approximates 1/lambda for every seed. *)
  let rate = 50.0 in
  List.iter
    (fun seed ->
      let times =
        O.schedule
          (O.Poisson { rate_per_s = rate })
          ~rng:(rng seed) ~duration_ms:400_000.0
      in
      let n = List.length times in
      check_bool "enough arrivals" true (n > 1000);
      (* n arrivals before the horizon: mean interarrival is the last
         offset over the count. *)
      let last = List.nth times (n - 1) in
      let mean = last /. float_of_int n in
      let expected = 1000.0 /. rate in
      if Float.abs (mean -. expected) > 0.08 *. expected then
        Alcotest.failf "seed %d: mean interarrival %.2f ms, expected ~%.2f"
          seed mean expected)
    [ 1; 2; 3; 4; 5 ]

let diurnal_phase () =
  (* The sinusoid modulates the rate on virtual time alone: phase 0
     starts at the trough, so the middle of the period is dense and
     the edges sparse; advancing the phase by half a period flips
     that. No engine anywhere near this. *)
  let period = 100_000.0 in
  let arr phase_ms =
    O.Diurnal { base_per_s = 2.0; peak_per_s = 40.0; period_ms = period; phase_ms }
  in
  check_float_near "phase 0 starts at base" 2.0 (O.rate_at (arr 0.0) 0.0);
  check_float_near "mid-period is the peak" 40.0
    (O.rate_at (arr 0.0) (period /. 2.0));
  check_float_near "half-period phase starts at the peak" 40.0
    (O.rate_at (arr (period /. 2.0)) 0.0);
  let count lo hi times =
    List.length (List.filter (fun t -> t >= lo && t < hi) times)
  in
  let quarter = period /. 4.0 in
  List.iter
    (fun seed ->
      let times = O.schedule (arr 0.0) ~rng:(rng seed) ~duration_ms:period in
      let trough = count 0.0 quarter times
      and peak = count (period /. 2.0 -. quarter /. 2.0)
          (period /. 2.0 +. quarter /. 2.0) times in
      check_bool "peak quarter at least 3x the trough quarter" true
        (peak > 3 * max 1 trough))
    [ 11; 12; 13 ]

(* --- open vs closed loop ------------------------------------------ *)

let open_vs_closed () =
  (* A sequential server at 20 ms/request, offered 100 req/s — twice
     its capacity. The closed loop politely waits and never sees a
     queue; the open loop measures from the scheduled arrival instant
     and watches the backlog grow. Coordinated omission, on stage. *)
  let w = make_world ~hosts:2 () in
  let port = 4000 in
  let dst = Transport.Address.make (Transport.Netstack.ip w.stacks.(0)) port in
  let n = 50 in
  let times = List.init n (fun i -> float_of_int (i + 1) *. 10.0) in
  let open_r, closed_r =
    in_sim w (fun () ->
        let stop =
          Rpc.Rawrpc.serve w.stacks.(0) ~port ~service_overhead_ms:20.0
            ~name:"slowpoke"
            (fun ~src:_ payload -> Some payload)
            ()
        in
        let submit _ =
          match
            Rpc.Rawrpc.call w.stacks.(1) ~dst ~timeout:30_000.0 ~attempts:1 "q"
          with
          | Ok _ -> true
          | Error _ -> false
        in
        let open_r = O.drive ~times ~submit () in
        let closed_r = O.drive_closed ~n ~submit () in
        stop ();
        (open_r, closed_r))
  in
  check_int "open loop: no errors" 0 open_r.O.errors;
  check_int "closed loop: no errors" 0 closed_r.O.errors;
  let open_p99 = Sim.Stats.percentile open_r.O.latency 99.0 in
  let closed_p99 = Sim.Stats.percentile closed_r.O.latency 99.0 in
  (* Closed loop: every sample is service + rtt, ~21 ms. *)
  check_bool "closed loop blind to queueing" true (closed_p99 < 40.0);
  (* Open loop: the 50th arrival waited out ~50 x 10 ms of backlog. *)
  check_bool "open loop sees queueing delay" true (open_p99 > 200.0);
  check_bool "open loop dwarfs closed loop" true (open_p99 > 5.0 *. closed_p99)

(* --- Hotrank properties ------------------------------------------- *)

let name_of_string s = Dns.Name.of_labels [ s; "test" ]

let prop_monotone_decay =
  QCheck.Test.make ~count:200 ~name:"decayed score is monotone in idle time"
    QCheck.(
      triple (int_range 100 10_000)
        (list_of_size (Gen.int_range 1 20) (int_range 0 5_000))
        (pair (int_range 1 5_000) (int_range 1 5_000)))
    (fun (half_life, sightings, (d1, d2)) ->
      let t = Dns.Hotrank.create
          ~strategy:(Dns.Hotrank.Decayed { half_life_ms = float_of_int half_life })
          ()
      in
      let name = name_of_string "steady" in
      List.iter
        (fun at ->
          Dns.Hotrank.note t ~group:"g" ~now_ms:(float_of_int at)
            ~ttl_ms:1_000_000.0 name)
        sightings;
      let t_last = float_of_int (List.fold_left max 0 sightings) in
      let d1, d2 = (min d1 d2, max d1 d2) in
      let at d =
        Dns.Hotrank.score t ~group:"g" ~now_ms:(t_last +. float_of_int d) name
      in
      match (at d1, at d2) with
      | Some s1, Some s2 -> s1 >= s2 && s2 > 0.0
      | _ -> false)

let prop_flash_bounded =
  QCheck.Test.make ~count:200
    ~name:"a one-name flash displaces at most one steady entry"
    QCheck.(pair (int_range 1 500) (int_range 2 10))
    (fun (burst, per_steady) ->
      let t = Dns.Hotrank.create
          ~strategy:(Dns.Hotrank.Decayed { half_life_ms = 5_000.0 })
          ()
      in
      let steady = List.map (fun i -> name_of_string (Printf.sprintf "s%02d" i))
          [ 0; 1; 2; 3 ]
      in
      (* Steady sightings spread over the run's recent past... *)
      for round = 1 to per_steady do
        List.iter
          (fun n ->
            Dns.Hotrank.note t ~group:"g"
              ~now_ms:(float_of_int (round * 2_000))
              ~ttl_ms:1_000_000.0 n)
          steady
      done;
      (* ...then one name takes [burst] sightings in half a second. *)
      let flash = name_of_string "zz-flash" in
      let t_burst = float_of_int (per_steady * 2_000 + 500) in
      for i = 1 to burst do
        Dns.Hotrank.note t ~group:"g"
          ~now_ms:(t_burst +. (float_of_int i /. float_of_int burst *. 500.0))
          ~ttl_ms:1_000_000.0 flash
      done;
      let top =
        List.map fst
          (Dns.Hotrank.top t ~group:"g" ~now_ms:(t_burst +. 600.0)
             ~k:(List.length steady))
      in
      let displaced =
        List.length
          (List.filter (fun n -> not (List.mem n top)) steady)
      in
      displaced <= 1)

let prop_ttl_expiry =
  QCheck.Test.make ~count:200 ~name:"a TTL-expired entry leaves the ranking"
    QCheck.(int_range 100 10_000)
    (fun ttl ->
      let t = Dns.Hotrank.create
          ~strategy:(Dns.Hotrank.Decayed { half_life_ms = 1_000_000.0 })
          ()
      in
      let name = name_of_string "ephemeral" in
      let ttl_ms = float_of_int ttl in
      Dns.Hotrank.note t ~group:"g" ~now_ms:0.0 ~ttl_ms name;
      let alive =
        Dns.Hotrank.score t ~group:"g" ~now_ms:(0.9 *. ttl_ms) name <> None
      in
      let dead =
        Dns.Hotrank.score t ~group:"g" ~now_ms:(ttl_ms +. 1.0) name = None
      in
      let gone =
        not
          (List.mem_assoc name
             (Dns.Hotrank.top t ~group:"g" ~now_ms:(ttl_ms +. 1.0) ~k:8))
      in
      alive && dead && gone)

let tie_break_pinned () =
  (* Equal scores rank by Dns.Name.compare, pinned here so a future
     "optimisation" of the ranking's iteration order shows up as a
     diff instead of as nondeterministic prefetch hints. *)
  List.iter
    (fun strategy ->
      let t = Dns.Hotrank.create ~strategy () in
      List.iter
        (fun l ->
          Dns.Hotrank.note t ~group:"g" ~now_ms:10.0 ~ttl_ms:60_000.0
            (name_of_string l))
        [ "carol"; "alice"; "bob" ];
      let top =
        List.map
          (fun (n, _) -> Dns.Name.to_string n)
          (Dns.Hotrank.top t ~group:"g" ~now_ms:20.0 ~k:3)
      in
      check_bool "ties in name order" true
        (top = [ "alice.test."; "bob.test."; "carol.test." ]
        || top = [ "alice.test"; "bob.test"; "carol.test" ]))
    [
      Dns.Hotrank.Sliding_count { window_ms = 1_000.0 };
      Dns.Hotrank.Decayed { half_life_ms = 1_000.0 };
    ]

(* --- the confederation harness ------------------------------------ *)

(* A miniature config: big enough to exercise churn, flash and both
   fleets, small enough for CI. *)
let tiny ?(ranking = O.Decayed) ?(seed = 7) () =
  {
    O.label = "tiny";
    seed;
    clients = 2_000;
    agent_hosts = 2;
    legacy_hosts = 2;
    legacy_fraction = 0.2;
    ch_fraction = 0.05;
    names = 32;
    zipf_s = 1.25;
    steady_k = 3;
    arrival = O.Poisson { rate_per_s = 8.0 };
    duration_ms = 20_000.0;
    churn_every_ms = 8_000.0;
    ranking;
    hand_codec = false;
    meta_replicas = 2;
    flash = Some { O.at_ms = 8_000.0; len_ms = 5_000.0; fraction = 0.9; rank = 9 };
    storm = None;
    slo_target_ms = 150.0;
    slo_objective = 0.98;
  }

let write_rows path rows = Obs.Export.write_bench_json ~path rows

let read_file path = In_channel.with_open_text path In_channel.input_all

let harness_deterministic () =
  (* Two fresh runs of the same config: identical arrival schedules,
     identical event counts, byte-identical bench rows. *)
  let r1 = O.run (tiny ()) in
  let r2 = O.run (tiny ()) in
  check_string "same digest" r1.O.digest r2.O.digest;
  check_int "same arrivals" r1.O.arrivals r2.O.arrivals;
  check_int "same sim events" r1.O.sim_events r2.O.sim_events;
  check_int "same errors" r1.O.errors r2.O.errors;
  let p1 = Filename.temp_file "loadharness" ".json" in
  let p2 = Filename.temp_file "loadharness" ".json" in
  write_rows p1 (O.report_rows r1);
  write_rows p2 (O.report_rows r2);
  let s1 = read_file p1 and s2 = read_file p2 in
  Sys.remove p1;
  Sys.remove p2;
  check_bool "rows json non-empty" true (String.length s1 > 100);
  check_string "byte-identical bench rows" s1 s2;
  (* A different seed reshuffles everything. *)
  let r3 = O.run (tiny ~seed:8 ()) in
  check_bool "different seed, different digest" false (r3.O.digest = r1.O.digest)

let harness_event_budget () =
  (* The CI guard: the tiny config must stay inside a fixed sim-event
     budget, so a runaway fiber (or an accidental retry storm) fails
     the suite instead of quietly tripling the run. *)
  let r = O.run (tiny ()) in
  check_bool "no errors" true (r.O.errors = 0);
  check_bool
    (Printf.sprintf "sim events %d within budget" r.O.sim_events)
    true
    (r.O.sim_events < 15_000);
  check_bool "prefetch seeded" true (r.O.prefetch_seeded > 0)

let suite =
  [
    Alcotest.test_case "schedule determinism" `Quick schedule_deterministic;
    Alcotest.test_case "poisson interarrival mean" `Quick poisson_mean;
    Alcotest.test_case "diurnal phase modulation" `Quick diurnal_phase;
    Alcotest.test_case "open vs closed loop queueing" `Quick open_vs_closed;
    qtest prop_monotone_decay;
    qtest prop_flash_bounded;
    qtest prop_ttl_expiry;
    Alcotest.test_case "hot ranking tie-break pinned" `Quick tie_break_pinned;
    Alcotest.test_case "harness determinism" `Quick harness_deterministic;
    Alcotest.test_case "harness event budget" `Quick harness_event_budget;
  ]
