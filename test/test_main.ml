let () =
  Alcotest.run "hns"
    [
      ("sim", Test_sim.suite);
      ("wire", Test_wire.suite);
      ("marshal", Test_marshal.suite);
      ("transport", Test_transport.suite);
      ("obs", Test_obs.suite);
      ("trace", Test_trace.suite);
      ("rpc", Test_rpc.suite);
      ("dns", Test_dns.suite);
      ("clearinghouse", Test_clearinghouse.suite);
      ("replication", Test_replication.suite);
      ("propagation", Test_propagation.suite);
      ("store", Test_store.suite);
      ("failure", Test_failure.suite);
      ("properties", Test_properties.suite);
      ("extensions", Test_extensions.suite);
      ("yp", Test_yp.suite);
      ("chaos", Test_chaos.suite);
      ("soak", Test_soak.suite);
      ("hrpc", Test_hrpc.suite);
      ("hns", Test_hns.suite);
      ("coldpath", Test_coldpath.suite);
      ("agent", Test_agent.suite);
      ("nsm", Test_nsm.suite);
      ("baseline", Test_baseline.suite);
      ("workload", Test_workload.suite);
      ("loadharness", Test_loadharness.suite);
      ("fanout", Test_fanout.suite);
      ("services", Test_services.suite);
      ("paper", Test_paper.suite);
    ]
