(* The hand-marshalled hot path: Bytebuf growth/pooling, round-trip
   and byte-identity properties for every hot record shape, the
   zero-copy prefetch tail (no Value tree materialised), the 512-byte
   shed boundary, and the calibrated >=5x cost-model gap the BENCH
   marshal.* rows are built from. *)

open Helpers
module S = Workload.Scenario
module Schema = Hns.Meta_schema
module HC = Hns.Hot_codec

(* --- Bytebuf growth and reuse (the pool's substrate) --- *)

let bytebuf_amortised_doubling () =
  let w = Wire.Bytebuf.Wr.create ~initial:1 () in
  check_int "starts at the requested capacity" 1 (Wire.Bytebuf.Wr.capacity w);
  Wire.Bytebuf.Wr.bytes w (String.make 100 'a');
  check_int "grew by doubling to the next power" 128
    (Wire.Bytebuf.Wr.capacity w);
  check_int "length tracks writes" 100 (Wire.Bytebuf.Wr.length w);
  check_string "contents intact across growth" (String.make 100 'a')
    (Wire.Bytebuf.Wr.contents w)

let bytebuf_ensure_capacity () =
  let w = Wire.Bytebuf.Wr.create ~initial:16 () in
  Wire.Bytebuf.Wr.ensure_capacity w 17;
  check_int "doubles to cover the need" 32 (Wire.Bytebuf.Wr.capacity w);
  Wire.Bytebuf.Wr.ensure_capacity w 20;
  check_int "no growth when capacity suffices" 32 (Wire.Bytebuf.Wr.capacity w);
  Wire.Bytebuf.Wr.ensure_capacity w 200;
  check_int "multiple doublings in one call" 256 (Wire.Bytebuf.Wr.capacity w)

let bytebuf_clear_retains_capacity () =
  let w = Wire.Bytebuf.Wr.create ~initial:8 () in
  Wire.Bytebuf.Wr.bytes w (String.make 300 'b');
  let grown = Wire.Bytebuf.Wr.capacity w in
  Wire.Bytebuf.Wr.clear w;
  check_int "cleared writer is empty" 0 (Wire.Bytebuf.Wr.length w);
  check_int "capacity survives clear (pooling basis)" grown
    (Wire.Bytebuf.Wr.capacity w);
  Wire.Bytebuf.Wr.bytes w "fresh";
  check_string "reused backing store serves new writes" "fresh"
    (Wire.Bytebuf.Wr.contents w)

let bytebuf_append_and_pad () =
  let a = Wire.Bytebuf.Wr.create () and b = Wire.Bytebuf.Wr.create () in
  Wire.Bytebuf.Wr.bytes a "head-";
  Wire.Bytebuf.Wr.bytes b "tail";
  Wire.Bytebuf.Wr.append a b;
  check_string "append blits the source writer" "head-tail"
    (Wire.Bytebuf.Wr.contents a);
  Wire.Bytebuf.Wr.pad_to a 4;
  check_int "padded to the alignment" 12 (Wire.Bytebuf.Wr.length a);
  check_string "zero padding" "head-tail\000\000\000"
    (Wire.Bytebuf.Wr.contents a)

(* --- generators for the hot shapes --- *)

let suite_gen =
  QCheck.Gen.(
    map3
      (fun data_rep transport control ->
        { Hrpc.Component.data_rep; transport; control })
      (oneofl [ Wire.Data_rep.Xdr; Wire.Data_rep.Courier ])
      (oneofl [ Hrpc.Component.T_udp; Hrpc.Component.T_tcp ])
      (oneofl
         [ Hrpc.Component.C_sunrpc; Hrpc.Component.C_courier;
           Hrpc.Component.C_raw ]))

let name_gen = QCheck.Gen.(string_size ~gen:printable (int_bound 40))
let port_gen = QCheck.Gen.int_bound 65_535

let nsm_info_gen =
  QCheck.Gen.(
    map
      (fun (((nsm_host, nsm_host_context), (nsm_port, nsm_prog)),
            (nsm_vers, nsm_suite)) ->
        {
          Schema.nsm_host;
          nsm_host_context;
          nsm_port;
          nsm_prog;
          nsm_vers;
          nsm_suite;
        })
      (pair
         (pair (pair name_gen name_gen) (pair port_gen (int_bound 1_000_000)))
         (pair (int_bound 16) suite_gen)))

let ns_info_gen =
  QCheck.Gen.(
    map
      (fun ((ns_type, ns_host), (ns_host_context, ns_port)) ->
        { Schema.ns_type; ns_host; ns_host_context; ns_port })
      (pair (pair name_gen name_gen) (pair name_gen port_gen)))

let status_gen =
  QCheck.Gen.oneofl
    [ Schema.B_ok; Schema.B_no_context; Schema.B_no_nsm; Schema.B_no_binding ]

let arb gen = QCheck.make gen

(* --- round trips and byte-identity with the generated stubs --- *)

(* Every hand wire form must be the byte-identical Generic_marshal/Xdr
   form: that is what lets mixed fleets (hand-codec agents, generated
   1987 clients, old servers) share one wire. *)
let generic ty v = Wire.Generic_marshal.marshal Wire.Data_rep.Xdr ty v

let string_round_trip =
  QCheck.Test.make ~name:"string: round trip + byte-identical wire" ~count:200
    QCheck.(string_of_size Gen.(int_bound 80))
    (fun s ->
      HC.decode_string (HC.encode_string s) = Some s
      && HC.encode_string s = generic Schema.string_ty (Wire.Value.str s))

let host_addr_round_trip =
  QCheck.Test.make ~name:"host_addr: round trip + byte-identical wire"
    ~count:200 QCheck.int32 (fun ip ->
      HC.decode_host_addr (HC.encode_host_addr ip) = Some ip
      && HC.encode_host_addr ip = generic Schema.host_addr_ty (Wire.Value.Uint ip))

let status_round_trip =
  QCheck.Test.make ~name:"bundle_status: round trip + byte-identical wire"
    ~count:50 (arb status_gen) (fun st ->
      HC.decode_bundle_status (HC.encode_bundle_status st) = Some st
      && HC.encode_bundle_status st
         = generic Schema.bundle_status_ty (Schema.bundle_status_to_value st))

let nsm_info_round_trip =
  QCheck.Test.make ~name:"nsm_info: round trip + byte-identical wire"
    ~count:200 (arb nsm_info_gen) (fun i ->
      HC.decode_nsm_info (HC.encode_nsm_info i) = Some i
      && HC.encode_nsm_info i
         = generic Schema.nsm_info_ty (Schema.nsm_info_to_value i))

let ns_info_round_trip =
  QCheck.Test.make ~name:"ns_info: round trip + byte-identical wire" ~count:200
    (arb ns_info_gen) (fun i ->
      HC.decode_ns_info (HC.encode_ns_info i) = Some i
      && HC.encode_ns_info i
         = generic Schema.ns_info_ty (Schema.ns_info_to_value i))

let alternates_round_trip =
  QCheck.Test.make ~name:"alternates: round trip + byte-identical wire"
    ~count:200
    QCheck.(list_of_size Gen.(int_bound 8) (string_of_size Gen.(int_bound 24)))
    (fun names ->
      HC.decode_alternates (HC.encode_alternates names) = Some names
      && HC.encode_alternates names
         = generic Schema.nsm_alternates_ty
             (Wire.Value.Array (List.map Wire.Value.str names)))

(* Decoders are total: junk bytes yield None (the generic-fallback
   signal), never an exception. *)
let junk_never_raises =
  QCheck.Test.make ~name:"hot decoders never raise on junk bytes" ~count:300
    QCheck.(string_of_size Gen.(int_bound 64))
    (fun bytes ->
      ignore (HC.decode_string bytes);
      ignore (HC.decode_host_addr bytes);
      ignore (HC.decode_bundle_status bytes);
      ignore (HC.decode_nsm_info bytes);
      ignore (HC.decode_ns_info bytes);
      ignore (HC.decode_alternates bytes);
      true)

(* Value-level dispatch (the cache/meta-client entry point) agrees
   with Generic_marshal in both directions on every hot type. *)
let value_dispatch_agrees =
  QCheck.Test.make ~name:"decode_value/encode_value agree with the stubs"
    ~count:100 (arb nsm_info_gen) (fun i ->
      let checks =
        [
          (Schema.nsm_info_ty, Schema.nsm_info_to_value i);
          (Schema.string_ty, Wire.Value.str i.Schema.nsm_host);
          (Schema.host_addr_ty, Wire.Value.Uint (Int32.of_int i.Schema.nsm_port));
          ( Schema.nsm_alternates_ty,
            Wire.Value.Array [ Wire.Value.str i.Schema.nsm_host_context ] );
          (Schema.bundle_status_ty, Schema.bundle_status_to_value Schema.B_ok);
        ]
      in
      List.for_all
        (fun (ty, v) ->
          HC.is_hot_ty ty
          && HC.encode_value ty v = Some (generic ty v)
          && HC.decode_value ty (generic ty v) = Some v)
        checks)

(* --- buffer pool accounting --- *)

let m_pool_hits = Obs.Metrics.counter "wire.codec.pool_hits"
let m_pool_misses = Obs.Metrics.counter "wire.codec.pool_misses"

let pool_reuses_buffers () =
  let specimen =
    {
      Schema.nsm_host = "nsm.cs.washington.edu";
      nsm_host_context = "uw-cs";
      nsm_port = 2049;
      nsm_prog = 200_000;
      nsm_vers = 2;
      nsm_suite = Hrpc.Component.sunrpc_suite;
    }
  in
  let hits0 = Obs.Metrics.value m_pool_hits
  and misses0 = Obs.Metrics.value m_pool_misses in
  let n = 50 in
  for _ = 1 to n do
    ignore (HC.encode_nsm_info specimen)
  done;
  let hits = Obs.Metrics.value m_pool_hits - hits0
  and misses = Obs.Metrics.value m_pool_misses - misses0 in
  check_int "every encode borrowed from the pool" n (hits + misses);
  (* Sequential borrows reuse one writer: at most the first can miss
     (and none do once any earlier test warmed the shared pool). *)
  check_bool "at most one cold miss" true (misses <= 1);
  check_bool "the batch rode pooled buffers" true (hits >= n - 1)

(* --- the zero-copy prefetch tail --- *)

(* A testbed whose clients run the hand codec end to end: bundle
   FindNSM, resolve-tail prefetch, demarshalled agent cache. *)
let hand_scn =
  lazy
    (let scn = S.build ~bundle:true ~prefetch:true ~hand_codec:true () in
     Experiments.warm_hot_tracker scn;
     scn)

let fresh_agent scn =
  let hns =
    S.new_hns ~cache_mode:Hns.Cache.Demarshalled scn ~on:scn.S.agent_stack
  in
  let agent = Hns.Agent.create hns () in
  Hns.Agent.start agent;
  agent

(* A cold agent-mediated resolve whose bundle reply carries the
   prefetch tail: with the hand codec on, every piggybacked
   HostAddress row lands in the shared cache as a native demarshalled
   entry — the wire.codec.value_materializations counter must not
   move, while hand decodes do. *)
let prefetch_tail_is_zero_copy () =
  let scn = Lazy.force hand_scn in
  S.in_sim scn (fun () ->
      let agent = fresh_agent scn in
      let meta = Hns.Client.meta (Hns.Agent.hns agent) in
      let resolve host_stack =
        get_ok ~msg:"resolve"
          (Hns.Agent.remote_resolve_addr scn.S.client_stack
             ~agent:(Hns.Agent.binding agent)
             (Hns.Hns_name.make ~context:scn.S.bind_context
                ~name:
                  (Printf.sprintf "%s.%s"
                     (Transport.Netstack.host host_stack).Sim.Topology.hostname
                     scn.S.zone)))
      in
      let materialized0 = Wire.Hotcodec.value_materializations () in
      let decodes0 = Wire.Hotcodec.hand_decodes () in
      let ip = resolve scn.S.client_stack in
      check_bool "cold resolve answered correctly" true
        (ip = Transport.Netstack.ip scn.S.client_stack);
      check_bool "prefetch rows admitted to the shared cache" true
        (Hns.Agent.prefetch_seeded agent >= 3);
      check_int "no Value tree materialised on the tail" materialized0
        (Wire.Hotcodec.value_materializations ());
      check_bool "the tail went through the hand codec" true
        (Wire.Hotcodec.hand_decodes () > decodes0);
      (* The prefetched entries then serve other hot hosts natively:
         still no Value materialisation on the warm reads. *)
      let ip_nsm = resolve scn.S.nsm_stack in
      check_bool "warm prefetched answer correct" true
        (ip_nsm = Transport.Netstack.ip scn.S.nsm_stack);
      check_int "warm native reads stay zero-copy" materialized0
        (Wire.Hotcodec.value_materializations ());
      check_bool "tail round trips skipped" true
        (Hns.Meta_client.prefetch_hits meta >= 1);
      Hns.Agent.stop agent)

(* --- the 512-byte shed boundary --- *)

(* Offer the bundle synthesizer far more prefetch rows than a UDP
   reply can carry: the reply must still encode under the 512-byte
   ceiling, keeping a hottest-first prefix and shedding the rest —
   never truncating (a TC'd bundle loses everything). *)
let shed_512_boundary () =
  let scn = S.build ~bundle:true () in
  let offered = 64 in
  let hot_names =
    List.init offered (fun i ->
        Dns.Name.of_string (Printf.sprintf "host%02d.shed.example." i))
  in
  let prefetch =
    {
      Hns.Meta_bundle.k = offered;
      contexts = [];
      hot =
        (fun ~context:_ ->
          List.mapi (fun i n -> (n, float_of_int (offered - i))) hot_names);
      addr_of = (fun _ -> Some 0x0A0B0C0Dl);
      ttl_s = 60l;
      note = None;
    }
  in
  Hns.Meta_bundle.install ~prefetch scn.S.meta_bind;
  S.in_sim scn (fun () ->
      let r =
        Dns.Resolver.create scn.S.client_stack
          ~servers:[ Dns.Server.addr scn.S.meta_bind ] ~enable_cache:false ()
      in
      let qname =
        Schema.bundle_key ~context:scn.S.bind_context
          ~query_class:Hns.Query_class.hrpc_binding
      in
      match Dns.Resolver.query r qname Dns.Rr.T_unspec with
      | Error _ -> Alcotest.fail "bundle query failed"
      | Ok answers ->
          let wire =
            Dns.Msg.encode
              (Dns.Msg.response
                 ~request:(Dns.Msg.query ~id:0 qname Dns.Rr.T_unspec)
                 answers)
          in
          check_bool "reply fits the UDP ceiling whole" true
            (String.length wire <= Dns.Msg.udp_payload_limit);
          let hints =
            List.filter_map
              (fun (rr : Dns.Rr.t) -> Schema.parse_host_addr_key rr.name)
              answers
          in
          check_bool "some hints survived the shed" true
            (List.length hints > 0);
          check_bool "overflowing hints were shed" true
            (List.length hints < offered);
          (* Shedding drops from the cold end only. *)
          List.iteri
            (fun i (_context, host) ->
              check_string "hottest-first prefix kept"
                (Dns.Name.to_string (List.nth hot_names i))
                host)
            hints)

(* --- the calibrated cost gap and metric hygiene --- *)

(* The BENCH marshal.* rows are built from the two calibrated cost
   models; the acceptance bar is hand >= 5x cheaper per record over
   the hot mix (paper: 10-25 ms generated vs 0.65-2.6 ms hand). *)
let model_gap_at_least_5x () =
  let rows = Experiments.marshal_rows () in
  let mean name = Sim.Stats.mean (List.assoc name rows) in
  let generated =
    mean "marshal.generated.encode_ms" +. mean "marshal.generated.decode_ms"
  and hand = mean "marshal.hand.encode_ms" +. mean "marshal.hand.decode_ms" in
  check_bool
    (Printf.sprintf "hand codec >= 5x cheaper (got %.1fx)" (generated /. hand))
    true
    (generated >= 5.0 *. hand);
  check_float_near "bytes identical across codecs"
    (mean "marshal.generated.bytes")
    (mean "marshal.hand.bytes")

let codec_metrics_lint_clean () =
  let contains ~sub s =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    n = 0 || go 0
  in
  (* Exercise every counter family first so lint sees live names. *)
  ignore (HC.decode_string (HC.encode_string "lint"));
  ignore (HC.decode_nsm_info "junk");
  match
    List.filter (contains ~sub:"wire.codec") (Obs.Metrics.lint ())
  with
  | [] -> ()
  | complaints ->
      Alcotest.failf "wire.codec.* metrics fail lint: %s"
        (String.concat "; " complaints)

let suite =
  [
    Alcotest.test_case "Bytebuf grows by amortised doubling" `Quick
      bytebuf_amortised_doubling;
    Alcotest.test_case "ensure_capacity doubles to cover the need" `Quick
      bytebuf_ensure_capacity;
    Alcotest.test_case "clear retains capacity for pooling" `Quick
      bytebuf_clear_retains_capacity;
    Alcotest.test_case "append blits and pad_to aligns" `Quick
      bytebuf_append_and_pad;
    qtest string_round_trip;
    qtest host_addr_round_trip;
    qtest status_round_trip;
    qtest nsm_info_round_trip;
    qtest ns_info_round_trip;
    qtest alternates_round_trip;
    qtest junk_never_raises;
    qtest value_dispatch_agrees;
    Alcotest.test_case "encode batches reuse pooled buffers" `Quick
      pool_reuses_buffers;
    Alcotest.test_case "prefetch tail decodes zero-copy" `Quick
      prefetch_tail_is_zero_copy;
    Alcotest.test_case "bundle reply sheds to the 512-byte boundary" `Quick
      shed_512_boundary;
    Alcotest.test_case "calibrated hand/generated gap is >= 5x" `Quick
      model_gap_at_least_5x;
    Alcotest.test_case "wire.codec.* metrics pass lint" `Quick
      codec_metrics_lint_clean;
  ]
