(* Tests for the observability layer: the metrics registry, the span
   tracer, the JSON codec, and the exporters (including the real
   BENCH_hns.json writer from the bench harness). *)

open Helpers

(* --- registry ------------------------------------------------------- *)

let registry_get_or_create () =
  Obs.Metrics.reset ();
  let c1 = Obs.Metrics.counter "test.obs.requests" in
  let c2 = Obs.Metrics.counter "test.obs.requests" in
  Obs.Metrics.incr c1;
  Obs.Metrics.add c2 2;
  (* both handles name the same instrument *)
  check_int "shared counter" 3 (Obs.Metrics.value c1);
  let g = Obs.Metrics.gauge "test.obs.depth" in
  Obs.Metrics.set g 4.5;
  check_float_near "gauge" 4.5 (Obs.Metrics.get (Obs.Metrics.gauge "test.obs.depth"))

let registry_kind_mismatch () =
  ignore (Obs.Metrics.counter "test.obs.kinded");
  (match Obs.Metrics.gauge "test.obs.kinded" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "re-registering a counter as a gauge should raise");
  match Obs.Metrics.counter "Not A Valid Name" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "invalid name should raise"

let registry_snapshot_and_find () =
  Obs.Metrics.reset ();
  Obs.Metrics.incr (Obs.Metrics.counter "test.obs.snap");
  (match Obs.Metrics.find "test.obs.snap" with
  | Some (Obs.Metrics.Count 1) -> ()
  | _ -> Alcotest.fail "find should see the counter at 1");
  check_bool "absent name" true (Obs.Metrics.find "test.obs.absent" = None);
  let names = List.map fst (Obs.Metrics.snapshot ()) in
  check_bool "snapshot sorted" true (List.sort compare names = names)

let registry_reset_keeps_handles () =
  let c = Obs.Metrics.counter "test.obs.resettable" in
  Obs.Metrics.incr c;
  Obs.Metrics.reset ();
  check_int "reset zeroes" 0 (Obs.Metrics.value c);
  Obs.Metrics.incr c;
  check_int "handle survives reset" 1 (Obs.Metrics.value c)

let histogram_percentiles () =
  Obs.Metrics.reset ();
  let h = Obs.Metrics.histogram "test.obs.latency_ms" in
  (* 1..100: exact percentiles land on sample edges *)
  for i = 1 to 100 do
    Obs.Metrics.observe h (float_of_int i)
  done;
  match Obs.Metrics.find "test.obs.latency_ms" with
  | Some (Obs.Metrics.Summary s) ->
      check_int "n" 100 s.n;
      check_float_near "mean" 50.5 s.mean;
      check_float_near "p50" 50.5 s.p50;
      check_float_near "min" 1.0 s.min;
      check_float_near "max" 100.0 s.max;
      check_bool "p95 at the edge" true (s.p95 >= 95.0 && s.p95 <= 96.0)
  | _ -> Alcotest.fail "histogram summary expected"

let histogram_empty_summary () =
  Obs.Metrics.reset ();
  ignore (Obs.Metrics.histogram "test.obs.untouched_ms");
  match Obs.Metrics.find "test.obs.untouched_ms" with
  | Some (Obs.Metrics.Summary s) -> check_int "empty histogram n" 0 s.n
  | _ -> Alcotest.fail "empty histogram should still report a summary"

let time_observes_virtual_clock () =
  Obs.Metrics.reset ();
  let h = Obs.Metrics.histogram "test.obs.timed_ms" in
  let w = make_world ~hosts:1 () in
  in_sim w (fun () -> Obs.Metrics.time h (fun () -> Sim.Engine.sleep 25.0));
  (match Obs.Metrics.find "test.obs.timed_ms" with
  | Some (Obs.Metrics.Summary s) ->
      check_int "one observation" 1 s.n;
      check_float_near "virtual duration" 25.0 s.mean
  | _ -> Alcotest.fail "summary expected");
  (* outside a simulated process the clock reads 0: no crash, 0 charge *)
  Obs.Metrics.time h (fun () -> ());
  match Obs.Metrics.find "test.obs.timed_ms" with
  | Some (Obs.Metrics.Summary s) -> check_int "second observation" 2 s.n
  | _ -> Alcotest.fail "summary expected"

(* --- spans ---------------------------------------------------------- *)

let span_nesting () =
  Obs.Span.clear ();
  Obs.Span.enable ();
  Fun.protect ~finally:Obs.Span.disable (fun () ->
      Obs.Span.with_span "outer" ~attrs:(fun () -> [ ("k", "v") ]) (fun () ->
          Obs.Span.with_span "inner" (fun () -> Obs.Span.add_attr "hit" "true"));
      match Obs.Span.finished () with
      | [ inner; outer ] ->
          check_string "inner name" "inner" inner.Obs.Span.name;
          check_string "outer name" "outer" outer.Obs.Span.name;
          check_bool "inner parented" true (inner.Obs.Span.parent = Some outer.Obs.Span.id);
          check_bool "outer is root" true (outer.Obs.Span.parent = None);
          check_bool "attr recorded" true
            (List.mem_assoc "hit" inner.Obs.Span.attrs)
      | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans))

let span_orphan_close () =
  Obs.Span.clear ();
  Obs.Span.enable ();
  Fun.protect ~finally:Obs.Span.disable (fun () ->
      let a = Obs.Span.open_span "a" in
      let _b = Obs.Span.open_span "b" in
      let _c = Obs.Span.open_span "c" in
      (* closing [a] must also close the still-open [b] and [c] *)
      Obs.Span.close_span a;
      check_int "no open spans" 0 (List.length (Obs.Span.open_stack ()));
      check_int "all recorded" 3 (List.length (Obs.Span.finished ()));
      (* closing an unknown id is a no-op *)
      Obs.Span.close_span 9999;
      check_int "still three" 3 (List.length (Obs.Span.finished ())))

let span_disabled_is_transparent () =
  Obs.Span.clear ();
  Obs.Span.disable ();
  let r = Obs.Span.with_span "ghost" (fun () -> 42) in
  check_int "value passes through" 42 r;
  check_int "nothing recorded" 0 (List.length (Obs.Span.finished ()))

let span_exception_closes () =
  Obs.Span.clear ();
  Obs.Span.enable ();
  Fun.protect ~finally:Obs.Span.disable (fun () ->
      (try Obs.Span.with_span "boom" (fun () -> failwith "x") with Failure _ -> ());
      check_int "span closed on raise" 1 (List.length (Obs.Span.finished ()));
      check_int "stack empty" 0 (List.length (Obs.Span.open_stack ())))

(* --- JSON codec ----------------------------------------------------- *)

let json_roundtrip () =
  let doc =
    Obs.Json.Obj
      [
        ("s", Obs.Json.Str "a \"quoted\"\nline");
        ("i", Obs.Json.Num 42.0);
        ("f", Obs.Json.Num 1.5);
        ("b", Obs.Json.Bool true);
        ("n", Obs.Json.Null);
        ("l", Obs.Json.List [ Obs.Json.Num 1.0; Obs.Json.Str "x" ]);
      ]
  in
  let reparsed = Obs.Json.of_string (Obs.Json.to_string doc) in
  check_bool "compact round-trip" true (reparsed = doc);
  let reparsed = Obs.Json.of_string (Obs.Json.to_string_pretty doc) in
  check_bool "pretty round-trip" true (reparsed = doc)

let json_parse_errors () =
  List.iter
    (fun s ->
      match Obs.Json.of_string s with
      | exception Obs.Json.Parse_error _ -> ()
      | _ -> Alcotest.failf "should not parse: %s" s)
    [ "{"; "[1,]"; "{\"a\":1} trailing"; "\"unterminated"; "nul"; "" ]

let metrics_json_roundtrip () =
  Obs.Metrics.reset ();
  Obs.Metrics.add (Obs.Metrics.counter "test.obs.json_counter") 7;
  Obs.Metrics.observe (Obs.Metrics.histogram "test.obs.json_ms") 12.0;
  let doc = Obs.Json.of_string (Obs.Json.to_string (Obs.Export.metrics_json ())) in
  let counter = Obs.Json.get "test.obs.json_counter" doc in
  check_int "counter value" 7 (Obs.Json.to_int (Obs.Json.get "value" counter));
  let hist = Obs.Json.get "test.obs.json_ms" doc in
  check_int "histogram n" 1 (Obs.Json.to_int (Obs.Json.get "n" hist));
  check_float_near "histogram mean" 12.0
    (Obs.Json.to_float (Obs.Json.get "mean_ms" hist));
  (* the line-oriented form parses line by line *)
  String.split_on_char '\n' (Obs.Export.metrics_json_lines ())
  |> List.filter (fun l -> l <> "")
  |> List.iter (fun line -> ignore (Obs.Json.of_string line))

(* --- exporters ------------------------------------------------------ *)

let pp_metrics_nonempty () =
  Obs.Metrics.reset ();
  Obs.Metrics.incr (Obs.Metrics.counter "test.obs.visible");
  let rendered = Format.asprintf "%a" Obs.Export.pp_metrics () in
  check_bool "table mentions the counter" true
    (let needle = "test.obs.visible" in
     let n = String.length needle and h = String.length rendered in
     let rec go i = i + n <= h && (String.sub rendered i n = needle || go (i + 1)) in
     go 0)

let bench_json_artifact () =
  (* The real writer from the bench harness: build the document, write
     it, read it back, and check the shape the trajectory depends on. *)
  let dir = Filename.temp_file "hns_bench" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let bench_path, obs_path = Experiments.write_json_artifacts ~dir ~n:2 () in
  let doc = Obs.Json.of_string (In_channel.with_open_text bench_path In_channel.input_all) in
  check_string "schema" "hns-bench/2" (Obs.Json.to_str (Obs.Json.get "schema" doc));
  let experiments = Obs.Json.to_list (Obs.Json.get "experiments" doc) in
  check_bool "has experiments" true (List.length experiments >= 4);
  let names =
    List.map (fun e -> Obs.Json.to_str (Obs.Json.get "name" e)) experiments
  in
  List.iter
    (fun expected -> check_bool expected true (List.mem expected names))
    [ "resolve.cold"; "resolve.warm"; "find_nsm.cold"; "find_nsm.warm" ];
  check_bool "chaos rows present" true
    (List.mem "chaos.failover.resolve_ms" names
    && List.mem "chaos.stale.resolve_ms" names);
  List.iter
    (fun e ->
      let name = Obs.Json.to_str (Obs.Json.get "name" e) in
      let n = Obs.Json.to_int (Obs.Json.get "n" e) in
      (* chaos, loadharness, marshal and durability rows carry their
         own sample populations (timeline resolutions / open-loop
         arrivals / the hot-shape specimen mix / per-append WAL
         latencies), not the requested repetition count *)
      let prefixed p =
        String.length name >= String.length p
        && String.sub name 0 (String.length p) = p
      in
      if
        prefixed "chaos." || prefixed "loadharness." || prefixed "marshal."
        || prefixed "durability." || prefixed "propagation.fanout."
      then
        check_bool "harness sample count" true (n > 0)
      else check_int "sample count" 2 n;
      let p50 = Obs.Json.to_float (Obs.Json.get "p50_ms" e) in
      let p95 = Obs.Json.to_float (Obs.Json.get "p95_ms" e) in
      let mean = Obs.Json.to_float (Obs.Json.get "mean_ms" e) in
      (* Fan-out rows carry rates and counters that are legitimately
         zero (the replicated arm's primary QPS, pinned stale reads). *)
      if prefixed "propagation.fanout." then
        check_bool "ordered quantiles" true (p50 >= 0.0 && p95 >= p50)
      else
        check_bool "positive latencies" true (p50 > 0.0 && p95 >= p50 && mean > 0.0))
    experiments;
  (* the metrics snapshot rides along and parses too *)
  let obs = Obs.Json.of_string (In_channel.with_open_text obs_path In_channel.input_all) in
  check_string "obs schema" "hns-obs/1" (Obs.Json.to_str (Obs.Json.get "schema" obs));
  check_bool "obs has metrics" true
    (Obs.Json.to_obj (Obs.Json.get "metrics" obs) <> []);
  Sys.remove bench_path;
  Sys.remove obs_path;
  Sys.rmdir dir

let suite =
  [
    Alcotest.test_case "registry get-or-create" `Quick registry_get_or_create;
    Alcotest.test_case "registry kind mismatch" `Quick registry_kind_mismatch;
    Alcotest.test_case "registry snapshot + find" `Quick registry_snapshot_and_find;
    Alcotest.test_case "reset keeps handles" `Quick registry_reset_keeps_handles;
    Alcotest.test_case "histogram percentiles" `Quick histogram_percentiles;
    Alcotest.test_case "empty histogram summary" `Quick histogram_empty_summary;
    Alcotest.test_case "time uses virtual clock" `Quick time_observes_virtual_clock;
    Alcotest.test_case "span nesting" `Quick span_nesting;
    Alcotest.test_case "span orphan close" `Quick span_orphan_close;
    Alcotest.test_case "span disabled transparent" `Quick span_disabled_is_transparent;
    Alcotest.test_case "span closed on raise" `Quick span_exception_closes;
    Alcotest.test_case "json round-trip" `Quick json_roundtrip;
    Alcotest.test_case "json parse errors" `Quick json_parse_errors;
    Alcotest.test_case "metrics json round-trip" `Quick metrics_json_roundtrip;
    Alcotest.test_case "pp_metrics non-empty" `Quick pp_metrics_nonempty;
    Alcotest.test_case "bench json artifact" `Quick bench_json_artifact;
  ]
