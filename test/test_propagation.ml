(* Tests for the change-propagation subsystem: the per-zone journal,
   NOTIFY push, IXFR incremental transfer, and delta-driven refresh of
   the preloaded HNS meta cache. *)

open Helpers

let mk_a name ip = Dns.Rr.make (Dns.Name.of_string name) (Dns.Rr.A ip)
let zname = Dns.Name.of_string "z"

(* A primary (updatable) + secondary pair over a small zone; the
   secondary's poll interval is [refresh_ms], NOTIFY registration is
   the caller's choice. *)
let make_pair w ~refresh_ms ?journal_deltas ?(register_notify = true) () =
  let zone =
    Dns.Zone.simple ?journal_deltas ~origin:zname [ mk_a "h.z" 7l ]
  in
  let primary = Dns.Server.create w.stacks.(0) ~allow_update:true () in
  Dns.Server.add_zone primary zone;
  Dns.Server.start primary;
  let replica_server = Dns.Server.create w.stacks.(1) () in
  Dns.Server.start replica_server;
  let secondary =
    Dns.Secondary.attach replica_server
      ~primary:(Dns.Server.addr primary) ~zone:zname ~refresh_ms ()
  in
  if register_notify then
    Dns.Server.register_notify primary (Dns.Server.addr replica_server);
  (zone, primary, secondary)

let update w primary rr =
  match
    Dns.Update.add_rr w.stacks.(2) ~server:(Dns.Server.addr primary)
      ~zone:zname rr
  with
  | Ok () -> ()
  | Error e -> Alcotest.failf "update failed: %a" Dns.Update.pp_error e

(* --- NOTIFY + IXFR: push-driven incremental convergence --- *)

let notify_ixfr_converges_without_polling () =
  let w = make_world ~hosts:3 () in
  let serial_ok, kicks, ixfrs, fulls, deltas =
    in_sim w (fun () ->
        (* Poll backstop a minute out: any convergence below that is
           push-driven. *)
        let zone, primary, secondary = make_pair w ~refresh_ms:60_000.0 () in
        update w primary (mk_a "new.z" 9l);
        Sim.Engine.sleep 2_000.0;
        let r =
          ( Int32.equal (Dns.Secondary.serial secondary) (Dns.Zone.serial zone),
            Dns.Secondary.notify_kicks secondary,
            Dns.Secondary.ixfr_applied secondary,
            Dns.Secondary.full_transfers secondary,
            Dns.Secondary.delta_records secondary )
        in
        Dns.Secondary.detach secondary;
        r)
  in
  check_bool "replica serial caught up inside the poll window" true serial_ok;
  check_int "one NOTIFY kick" 1 kicks;
  check_int "one incremental refresh" 1 ixfrs;
  check_int "only the initial transfer was full" 1 fulls;
  check_bool "the delta carried the change" true (deltas >= 1)

(* --- journal truncation: IXFR degrades to a full transfer --- *)

let truncated_journal_falls_back_to_axfr () =
  let w = make_world ~hosts:3 () in
  let serial_ok, fulls_after_burst, ixfrs_after_burst, ixfrs_final =
    in_sim w (fun () ->
        (* A 2-delta journal and no NOTIFY: the secondary only polls,
           and a burst of updates outruns what the journal retains. *)
        let zone, primary, secondary =
          make_pair w ~refresh_ms:5_000.0 ~journal_deltas:2
            ~register_notify:false ()
        in
        for i = 1 to 5 do
          update w primary (mk_a (Printf.sprintf "burst%d.z" i) (Int32.of_int i))
        done;
        Sim.Engine.sleep 6_000.0;
        let fulls_after_burst = Dns.Secondary.full_transfers secondary in
        let ixfrs_after_burst = Dns.Secondary.ixfr_applied secondary in
        let caught_up =
          Int32.equal (Dns.Secondary.serial secondary) (Dns.Zone.serial zone)
        in
        (* One more update fits the journal: back to the delta path. *)
        update w primary (mk_a "calm.z" 99l);
        Sim.Engine.sleep 6_000.0;
        let r =
          ( caught_up
            && Int32.equal (Dns.Secondary.serial secondary)
                 (Dns.Zone.serial zone),
            fulls_after_burst,
            ixfrs_after_burst,
            Dns.Secondary.ixfr_applied secondary )
        in
        Dns.Secondary.detach secondary;
        r)
  in
  check_bool "replica converged both times" true serial_ok;
  check_int "burst forced an AXFR fallback" 2 fulls_after_burst;
  check_int "no delta could bridge the burst" 0 ixfrs_after_burst;
  check_int "single update rode the journal" 1 ixfrs_final

(* --- chaos: a lost NOTIFY degrades to the poll backstop --- *)

let lost_notify_degrades_to_polling () =
  let w = make_world ~hosts:3 () in
  let stale_mid_window, converged, kicks =
    in_sim w (fun () ->
        let zone, primary, secondary = make_pair w ~refresh_ms:10_000.0 () in
        (* Cut primary <-> replica around the update instant: the
           NOTIFY (and its retries) die on the wire. The admin host
           stays connected to the primary. *)
        let inj =
          Chaos.Injector.install
            [
              Chaos.Plan.partition ~group_a:[ "h0" ] ~group_b:[ "h1" ]
                ~at:1_000.0 ~heal_at:8_000.0;
            ]
            w.net
        in
        Sim.Engine.sleep 2_000.0;
        update w primary (mk_a "new.z" 9l);
        Sim.Engine.sleep 4_000.0;
        (* Mid-window: the push was lost, the replica is behind. *)
        let stale =
          Int32.compare (Dns.Secondary.serial secondary)
            (Dns.Zone.serial zone)
          < 0
        in
        (* Past the heal and the 10 s poll, the backstop converges. *)
        Sim.Engine.sleep 7_000.0;
        let converged =
          Int32.equal (Dns.Secondary.serial secondary) (Dns.Zone.serial zone)
        in
        let kicks = Dns.Secondary.notify_kicks secondary in
        Chaos.Injector.uninstall inj;
        Dns.Secondary.detach secondary;
        (stale, converged, kicks))
  in
  check_bool "stale while the NOTIFY was lost" true stale_mid_window;
  check_bool "poll backstop converged after heal" true converged;
  check_int "no NOTIFY ever arrived" 0 kicks

(* --- the preloaded meta client, kept coherent by deltas --- *)

let meta_value = Wire.Value.str "UW-BIND"

let meta_world () =
  let w = make_world ~hosts:3 () in
  (w, fun () ->
    let records =
      List.map
        (fun c ->
          Dns.Rr.make ~ttl:3600l
            (Hns.Meta_schema.context_key c)
            (Dns.Rr.Unspec
               (Wire.Xdr.to_string Hns.Meta_schema.string_ty meta_value)))
        [ "alpha"; "beta"; "gamma" ]
    in
    let zone =
      Dns.Zone.simple ~origin:Hns.Meta_schema.zone_origin records
    in
    let primary = Dns.Server.create w.stacks.(0) ~allow_update:true () in
    Dns.Server.add_zone primary zone;
    Dns.Server.start primary;
    let client =
      Hns.Meta_client.create w.stacks.(1)
        ~meta_server:(Dns.Server.addr primary)
        ~cache:(Hns.Cache.create ~mode:Hns.Cache.Demarshalled ())
        ()
    in
    (match Hns.Meta_client.preload client with
    | Ok n -> check_int "preload seeded the zone" 3 n
    | Error e -> Alcotest.failf "preload failed: %s" (Hns.Errors.to_string e));
    let listener, stop_listener = Hns.Meta_client.start_notify_listener client in
    Dns.Server.register_notify primary listener;
    let admin =
      Hns.Meta_client.create w.stacks.(2)
        ~meta_server:(Dns.Server.addr primary)
        ~cache:(Hns.Cache.create ~mode:Hns.Cache.Demarshalled ())
        ()
    in
    (primary, client, admin, stop_listener))

let client_applies_added_records () =
  let w, setup = meta_world () in
  let cached, refreshes, fulls, kicks, remote, serial_moved =
    in_sim w (fun () ->
        let _primary, client, admin, stop = setup () in
        let s0 = Hns.Meta_client.zone_serial client in
        let key = Hns.Meta_schema.context_key "delta" in
        (match
           Hns.Meta_client.store admin ~key ~ty:Hns.Meta_schema.string_ty
             meta_value
         with
        | Ok () -> ()
        | Error e -> Alcotest.failf "store failed: %s" (Hns.Errors.to_string e));
        Sim.Engine.sleep 2_000.0;
        let cached =
          Hns.Cache.peek
            (Hns.Meta_client.cache client)
            ~key:(Hns.Meta_schema.cache_key key)
        in
        let r =
          ( cached,
            Hns.Meta_client.delta_refreshes client,
            Hns.Meta_client.full_refreshes client,
            Hns.Meta_client.notify_kicks client,
            Hns.Meta_client.remote_lookups client,
            Hns.Meta_client.zone_serial client <> s0 )
        in
        stop ();
        r)
  in
  check_bool "new record landed in the cache by push" true cached;
  check_int "one delta refresh" 1 refreshes;
  check_int "only the initial preload was full" 1 fulls;
  check_int "one NOTIFY kick" 1 kicks;
  check_int "no per-record remote lookups" 0 remote;
  check_bool "tracked serial advanced" true serial_moved

let client_invalidates_deleted_records () =
  let w, setup = meta_world () in
  let gone, invalidations, lookup_after =
    in_sim w (fun () ->
        let _primary, client, admin, stop = setup () in
        let key = Hns.Meta_schema.context_key "alpha" in
        (match Hns.Meta_client.remove admin ~key with
        | Ok () -> ()
        | Error e ->
            Alcotest.failf "remove failed: %s" (Hns.Errors.to_string e));
        Sim.Engine.sleep 2_000.0;
        let gone =
          not
            (Hns.Cache.peek
               (Hns.Meta_client.cache client)
               ~key:(Hns.Meta_schema.cache_key key))
        in
        let lookup_after =
          Hns.Meta_client.lookup client ~key ~ty:Hns.Meta_schema.string_ty
        in
        let r =
          (gone, Hns.Meta_client.delta_invalidations client, lookup_after)
        in
        stop ();
        r)
  in
  check_bool "deleted record invalidated on the spot" true gone;
  check_int "one delta invalidation" 1 invalidations;
  check_bool "resolving it now reports absence" true (lookup_after = Ok None)

(* --- negative TTL derived from the zone SOA (RFC 2308) --- *)

let negative_ttl_follows_soa_minimum () =
  let w = make_world ~hosts:2 () in
  let effective, remote_after_two, remote_after_expiry =
    in_sim w (fun () ->
        (* A meta zone whose SOA advertises a 5 s negative TTL, well
           under the client's 60 s cap. *)
        let soa =
          {
            Dns.Rr.mname = Dns.Name.of_string "meta-primary";
            rname = Dns.Name.of_string "hostmaster";
            serial = 1l;
            refresh = 600l;
            retry = 60l;
            expire = 86_400l;
            minimum = 5l;
          }
        in
        let zone =
          Dns.Zone.create ~origin:Hns.Meta_schema.zone_origin ~soa []
        in
        let server = Dns.Server.create w.stacks.(0) () in
        Dns.Server.add_zone server zone;
        Dns.Server.start server;
        let client =
          Hns.Meta_client.create w.stacks.(1)
            ~meta_server:(Dns.Server.addr server)
            ~cache:(Hns.Cache.create ~mode:Hns.Cache.Demarshalled ())
            ~negative_ttl_ms:60_000.0 ()
        in
        let ghost = Hns.Meta_schema.context_key "ghost" in
        let ask () =
          ignore
            (Hns.Meta_client.lookup client ~key:ghost
               ~ty:Hns.Meta_schema.string_ty)
        in
        ask ();
        ask ();
        (* second hit the negative entry *)
        let two = Hns.Meta_client.remote_lookups client in
        Sim.Engine.sleep 6_000.0;
        (* past the SOA-derived 5 s, far under the 60 s cap *)
        ask ();
        ( Hns.Meta_client.effective_negative_ttl_ms client,
          two,
          Hns.Meta_client.remote_lookups client ))
  in
  check_float_near "SOA minimum wins under the cap" 5_000.0 effective;
  check_int "cached absence suppressed the requery" 1 remote_after_two;
  check_int "requeried once the SOA TTL lapsed" 2 remote_after_expiry

(* --- property: snapshot + IXFR deltas == fresh AXFR --- *)

let gen_ops =
  (* Update scripts over a small key space: set k := v, or delete k.
     Collisions and delete-then-re-add sequences are the point. *)
  QCheck.Gen.(
    list_size (int_range 1 24)
      (oneof
         [
           map2 (fun k v -> `Set (k mod 8, v)) small_int int;
           map (fun k -> `Del (k mod 8)) small_int;
         ]))

let arb_ops = QCheck.make ~print:(fun l -> Printf.sprintf "%d ops" (List.length l)) gen_ops

let render_records records =
  List.sort String.compare
    (List.map (fun rr -> Format.asprintf "%a" Dns.Rr.pp rr) records)

let ixfr_matches_axfr ops =
  let w = make_world ~hosts:1 () in
  in_sim w (fun () ->
      let zone = Dns.Zone.simple ~origin:zname [ mk_a "h.z" 7l ] in
      let server = Dns.Server.create w.stacks.(0) ~allow_update:true () in
      Dns.Server.add_zone server zone;
      (* Snapshot the zone at its starting serial, as a replica that
         transferred it once would hold it. *)
      let s0 = Dns.Zone.serial zone in
      let snapshot =
        match Dns.Zone.axfr_records zone with
        | { Dns.Rr.rdata = Dns.Rr.Soa soa; _ } :: data ->
            Dns.Zone.create ~origin:zname ~soa data
        | _ -> Alcotest.fail "AXFR payload did not lead with the SOA"
      in
      (* Drive the primary through the script via real UPDATE
         messages, so the journal is fed by the production path. *)
      let key k = Dns.Name.of_string (Printf.sprintf "k%d.z" k) in
      List.iteri
        (fun i op ->
          let ops =
            match op with
            | `Set (k, v) ->
                [
                  Dns.Msg.Delete_rrset (key k, Dns.Rr.T_a);
                  Dns.Msg.Add (mk_a (Printf.sprintf "k%d.z" k) (Int32.of_int v));
                ]
            | `Del k -> [ Dns.Msg.Delete_name (key k) ]
          in
          let reply =
            Dns.Server.handle server
              (Dns.Msg.update_request ~id:(i land 0xFFFF) ~zone:zname ops)
          in
          if reply.Dns.Msg.rcode <> Dns.Msg.No_error then
            Alcotest.failf "update %d refused" i)
        ops;
      (* Serve the IXFR exactly as the TCP loop would and replay it
         onto the snapshot. *)
      (match Dns.Ixfr.answers_for_zone zone ~serial:s0 with
      | `Fallback -> Alcotest.fail "journal truncated under 24 updates"
      | `Answers rrs -> (
          match Dns.Ixfr.parse_answers rrs with
          | Error m -> Alcotest.failf "unparseable IXFR answer: %s" m
          | Ok (Dns.Ixfr.Full _) ->
              Alcotest.fail "expected an incremental payload"
          | Ok (Dns.Ixfr.Unchanged _) ->
              if not (Int32.equal s0 (Dns.Zone.serial zone)) then
                Alcotest.fail "unchanged despite updates"
          | Ok (Dns.Ixfr.Deltas (soa, changes)) ->
              Dns.Zone.apply_delta snapshot
                {
                  Dns.Journal.from_serial = s0;
                  to_serial = soa.Dns.Rr.serial;
                  changes;
                };
              Dns.Zone.set_soa snapshot soa));
      render_records (Dns.Zone.axfr_records snapshot)
      = render_records (Dns.Zone.axfr_records zone))

let ixfr_equivalence_prop =
  QCheck.Test.make ~name:"snapshot + IXFR deltas == fresh AXFR" ~count:60
    arb_ops ixfr_matches_axfr

let suite =
  [
    Alcotest.test_case "NOTIFY+IXFR converges without polling" `Quick
      notify_ixfr_converges_without_polling;
    Alcotest.test_case "truncated journal falls back to AXFR" `Quick
      truncated_journal_falls_back_to_axfr;
    Alcotest.test_case "lost NOTIFY degrades to polling" `Quick
      lost_notify_degrades_to_polling;
    Alcotest.test_case "client applies added records" `Quick
      client_applies_added_records;
    Alcotest.test_case "client invalidates deleted records" `Quick
      client_invalidates_deleted_records;
    Alcotest.test_case "negative TTL follows SOA minimum" `Quick
      negative_ttl_follows_soa_minimum;
    qtest ixfr_equivalence_prop;
  ]
