(* Cross-cutting property tests: whole-message roundtrips for every
   wire protocol, cache laws, and engine scheduling laws. *)

open Helpers

(* --- generators --- *)

let gen_label =
  QCheck.Gen.(
    map (String.concat "")
      (list_size (int_range 1 8) (map (String.make 1) (char_range 'a' 'z'))))

let gen_dns_name = QCheck.Gen.(map Dns.Name.of_labels (list_size (int_range 0 4) gen_label))

let gen_rdata =
  QCheck.Gen.(
    oneof
      [
        map (fun ip -> Dns.Rr.A (Int32.of_int ip)) int;
        map (fun n -> Dns.Rr.Ns n) gen_dns_name;
        map (fun n -> Dns.Rr.Cname n) gen_dns_name;
        map (fun n -> Dns.Rr.Ptr n) gen_dns_name;
        map2 (fun cpu os -> Dns.Rr.Hinfo (cpu, os)) gen_label gen_label;
        map2 (fun pref n -> Dns.Rr.Mx (pref land 0xFFFF, n)) small_int gen_dns_name;
        map (fun ss -> Dns.Rr.Txt ss) (list_size (int_range 1 3) gen_label);
        map (fun s -> Dns.Rr.Unspec s) (string_size (int_bound 40));
        map2
          (fun m r ->
            Dns.Rr.Soa
              {
                Dns.Rr.mname = m;
                rname = r;
                serial = 5l;
                refresh = 6l;
                retry = 7l;
                expire = 8l;
                minimum = 9l;
              })
          gen_dns_name gen_dns_name;
      ])

let gen_rr =
  QCheck.Gen.(
    map2
      (fun name rdata -> Dns.Rr.make ~ttl:300l name rdata)
      (map2 (fun l n -> Dns.Name.prepend l n) gen_label gen_dns_name)
      gen_rdata)

let gen_qtype =
  QCheck.Gen.oneofl
    [ Dns.Rr.T_a; T_ns; T_cname; T_soa; T_ptr; T_hinfo; T_mx; T_txt; T_unspec; T_any ]

let gen_query_msg =
  QCheck.Gen.(
    map2
      (fun (id, name) qtype -> Dns.Msg.query ~id:(id land 0xFFFF) name qtype)
      (pair small_int (map2 Dns.Name.prepend gen_label gen_dns_name))
      gen_qtype)

let gen_response_msg =
  QCheck.Gen.(
    gen_query_msg >>= fun q ->
    map (fun answers -> Dns.Msg.response ~request:q answers) (list_size (int_bound 5) gen_rr))

let gen_update_msg =
  QCheck.Gen.(
    let zone = Dns.Name.of_string "z" in
    let in_zone = map (fun l -> Dns.Name.prepend l zone) gen_label in
    let gen_op =
      oneof
        [
          map2 (fun n rd -> Dns.Msg.Add (Dns.Rr.make n rd)) in_zone gen_rdata;
          map (fun n -> Dns.Msg.Delete_rrset (n, Dns.Rr.T_a)) in_zone;
          map2 (fun n rd -> Dns.Msg.Delete_rr (n, rd)) in_zone gen_rdata;
          map (fun n -> Dns.Msg.Delete_name n) in_zone;
        ]
    in
    map2
      (fun id ops -> Dns.Msg.update_request ~id:(id land 0xFFFF) ~zone ops)
      small_int
      (list_size (int_range 1 5) gen_op))

let arb_msg =
  QCheck.make
    QCheck.Gen.(oneof [ gen_query_msg; gen_response_msg; gen_update_msg ])
    ~print:(Format.asprintf "%a" Dns.Msg.pp)

let dns_msg_roundtrip =
  QCheck.Test.make ~name:"DNS message roundtrip (queries/responses/updates)" ~count:500
    arb_msg
    (fun m -> Dns.Msg.decode (Dns.Msg.encode m) = m)

let dns_msg_decode_total =
  (* decode never raises anything but Bad_message on arbitrary bytes *)
  QCheck.Test.make ~name:"DNS decode is total" ~count:500
    QCheck.(string_of_size (Gen.int_bound 64))
    (fun s ->
      match Dns.Msg.decode s with
      | _ -> true
      | exception Dns.Msg.Bad_message _ -> true
      | exception _ -> false)

(* --- sun rpc / courier wire fuzz --- *)

let sunrpc_decode_total =
  QCheck.Test.make ~name:"Sun RPC decode is total" ~count:500
    QCheck.(string_of_size (Gen.int_bound 64))
    (fun s ->
      match Rpc.Sunrpc_wire.decode s with
      | _ -> true
      | exception Rpc.Sunrpc_wire.Bad_message _ -> true
      | exception _ -> false)

let courier_decode_total =
  QCheck.Test.make ~name:"Courier decode is total" ~count:500
    QCheck.(string_of_size (Gen.int_bound 64))
    (fun s ->
      match Rpc.Courier_wire.decode s with
      | _ -> true
      | exception Rpc.Courier_wire.Bad_message _ -> true
      | exception _ -> false)

(* --- binding/hrpc properties --- *)

let binding_bytes_stable =
  (* serialization is canonical: encode . decode . encode = encode *)
  let gen =
    QCheck.Gen.(
      map2
        (fun ip port ->
          Hrpc.Binding.make ~suite:Hrpc.Component.courier_suite
            ~server:(Transport.Address.make (Int32.of_int ip) (port land 0xFFFF))
            ~prog:port ~vers:1)
        int small_int)
  in
  QCheck.Test.make ~name:"binding bytes canonical" ~count:200
    (QCheck.make gen ~print:(Format.asprintf "%a" Hrpc.Binding.pp))
    (fun b ->
      let once = Hrpc.Binding.to_bytes b in
      String.equal once (Hrpc.Binding.to_bytes (Hrpc.Binding.of_bytes once)))

(* --- cache laws --- *)

let cache_read_your_write =
  QCheck.Test.make ~name:"cache: read-your-write within TTL" ~count:200
    QCheck.(pair (oneofl [ Hns.Cache.Marshalled; Hns.Cache.Demarshalled ]) small_int)
    (fun (mode, n) ->
      let c = Hns.Cache.create ~mode () in
      let v = Wire.Value.Array (List.init (n mod 5) (fun i -> Wire.Value.int i)) in
      let ty = Wire.Idl.T_array Wire.Idl.T_int in
      Hns.Cache.insert c ~key:"k" ~ty v;
      match Hns.Cache.find c ~key:"k" ~ty with
      | Some v' -> Wire.Value.equal v v'
      | None -> false)

let cache_overwrite_wins =
  QCheck.Test.make ~name:"cache: last insert wins" ~count:200
    QCheck.(pair small_int small_int)
    (fun (a, b) ->
      let c = Hns.Cache.create ~mode:Hns.Cache.Marshalled () in
      let ty = Wire.Idl.T_int in
      Hns.Cache.insert c ~key:"k" ~ty (Wire.Value.int a);
      Hns.Cache.insert c ~key:"k" ~ty (Wire.Value.int b);
      Hns.Cache.find c ~key:"k" ~ty = Some (Wire.Value.int b))

(* --- engine laws --- *)

let engine_events_fire_in_time_order =
  QCheck.Test.make ~name:"engine: callbacks fire in timestamp order" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 20) (float_range 0.0 1000.0))
    (fun delays ->
      let w = make_world ~hosts:1 () in
      let fired = ref [] in
      List.iter
        (fun d -> Sim.Engine.at w.engine d (fun () -> fired := d :: !fired))
        delays;
      Sim.Engine.run w.engine;
      let fired = List.rev !fired in
      fired = List.stable_sort compare delays)

let engine_sleep_additive =
  QCheck.Test.make ~name:"engine: sleeps accumulate exactly" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 10) (float_range 0.0 100.0))
    (fun delays ->
      let w = make_world ~hosts:1 () in
      let total = ref nan in
      Sim.Engine.spawn w.engine (fun () ->
          List.iter Sim.Engine.sleep delays;
          total := Sim.Engine.time ());
      Sim.Engine.run w.engine;
      Float.abs (!total -. List.fold_left ( +. ) 0.0 delays) < 1e-6)

(* --- idl/value laws --- *)

let node_count_positive =
  QCheck.Test.make ~name:"node_count >= 1" ~count:300 Test_wire.arb_ty_value
    (fun (_, v) -> Wire.Value.node_count v >= 1)

let xdr_courier_disagree_is_fine =
  (* the two representations are genuinely different formats for any
     value with a string or bool in it — sanity that we aren't testing
     a codec against itself *)
  QCheck.Test.make ~name:"XDR and Courier differ on booleans" ~count:50 QCheck.bool
    (fun b ->
      let v = Wire.Value.Bool b in
      Wire.Xdr.to_string Wire.Idl.T_bool v <> Wire.Courier.to_string Wire.Idl.T_bool v)

let suite =
  [
    qtest dns_msg_roundtrip;
    qtest dns_msg_decode_total;
    qtest sunrpc_decode_total;
    qtest courier_decode_total;
    qtest binding_bytes_stable;
    qtest cache_read_your_write;
    qtest cache_overwrite_wins;
    qtest engine_events_fire_in_time_order;
    qtest engine_sleep_additive;
    qtest node_count_positive;
    qtest xdr_courier_disagree_is_fine;
  ]

(* --- a few more cross-cutting checks --- *)

let iterative_query_caches () =
  let w = Helpers.make_world ~hosts:3 () in
  let served_after_two =
    Helpers.in_sim w (fun () ->
        let parent = Dns.Server.create w.stacks.(0) () in
        Dns.Server.add_zone parent
          (Dns.Zone.simple ~origin:(Dns.Name.of_string "z")
             [ Dns.Rr.make (Dns.Name.of_string "h.z") (Dns.Rr.A 3l) ]);
        Dns.Server.start parent;
        let r = Dns.Resolver.create w.stacks.(2) ~servers:[ Dns.Server.addr parent ] () in
        ignore (Dns.Resolver.query_iterative r (Dns.Name.of_string "h.z") Dns.Rr.T_a);
        ignore (Dns.Resolver.query_iterative r (Dns.Name.of_string "h.z") Dns.Rr.T_a);
        Dns.Server.queries_served parent)
  in
  Helpers.check_int "second iterative query is a cache hit" 1 served_after_two

let address_ordering_total =
  QCheck.Test.make ~name:"address compare is a total order" ~count:200
    QCheck.(triple (pair int small_int) (pair int small_int) (pair int small_int))
    (fun ((i1, p1), (i2, p2), (i3, p3)) ->
      let mk (i, p) = Transport.Address.make (Int32.of_int i) (p land 0xFFFF) in
      let a = mk (i1, p1) and b = mk (i2, p2) and c = mk (i3, p3) in
      let cmp = Transport.Address.compare in
      (* antisymmetry and transitivity spot checks *)
      (cmp a b = -cmp b a || cmp a b = 0)
      && (not (cmp a b <= 0 && cmp b c <= 0) || cmp a c <= 0))

let engine_negative_delay_rejected () =
  let w = Helpers.make_world ~hosts:1 () in
  match Sim.Engine.at w.engine (-1.0) (fun () -> ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative delay must be rejected"

let idl_pp_total =
  QCheck.Test.make ~name:"Idl.pp and Value.pp never raise" ~count:200
    Test_wire.arb_ty_value
    (fun (ty, v) ->
      ignore (Format.asprintf "%a" Wire.Idl.pp ty);
      ignore (Format.asprintf "%a" Wire.Value.pp v);
      true)

let zipf_cdf_monotone =
  QCheck.Test.make ~name:"zipf pmf is nonincreasing in rank" ~count:100
    QCheck.(pair (int_range 2 60) (float_range 0.1 3.0))
    (fun (n, s) ->
      let z = Workload.Zipf.create ~n ~s in
      let ok = ref true in
      for k = 1 to n - 1 do
        if Workload.Zipf.pmf z k > Workload.Zipf.pmf z (k - 1) +. 1e-12 then ok := false
      done;
      !ok)

let more_properties =
  [
    Alcotest.test_case "iterative query caches" `Quick iterative_query_caches;
    qtest address_ordering_total;
    Alcotest.test_case "negative delay rejected" `Quick engine_negative_delay_rejected;
    qtest idl_pp_total;
    qtest zipf_cdf_monotone;
  ]

let suite = suite @ more_properties

(* --- chaos layer properties: backoff schedules and fault healing --- *)

(* Arbitrary sane retry policies (multiplier >= 1 keeps the nominal
   pause sequence non-decreasing, which is the regime the jitter
   envelope below assumes). *)
let gen_policy =
  QCheck.Gen.(
    map
      (fun ((attempts, timeout), (base, mult), (cap, (ratio, seed))) ->
        {
          Rpc.Control.default_policy with
          Rpc.Control.attempts = attempts;
          attempt_timeout_ms = timeout;
          backoff_base_ms = base;
          backoff_multiplier = mult;
          backoff_cap_ms = cap;
          jitter_ratio = ratio;
          jitter_seed = Int64.of_int seed;
        })
      (triple
         (pair (int_range 1 8) (float_range 1.0 2000.0))
         (pair (float_range 1.0 500.0) (float_range 1.0 3.0))
         (pair (float_range 50.0 5000.0) (pair (float_range 0.0 0.9) int))))

let arb_policy_and_seed =
  QCheck.make
    QCheck.Gen.(pair gen_policy (map Int64.of_int int))
    ~print:(fun (p, seed) ->
      Printf.sprintf "attempts=%d base=%.1f mult=%.2f cap=%.1f jitter=%.2f seed=%Ld"
        p.Rpc.Control.attempts p.Rpc.Control.backoff_base_ms
        p.Rpc.Control.backoff_multiplier p.Rpc.Control.backoff_cap_ms
        p.Rpc.Control.jitter_ratio seed)

let backoff_monotone =
  QCheck.Test.make ~name:"backoff schedule is monotone non-decreasing" ~count:300
    arb_policy_and_seed (fun (p, seed) ->
      let s = Rpc.Control.backoff_schedule p ~seed in
      let ok = ref true in
      for i = 1 to Array.length s - 1 do
        if s.(i) < s.(i - 1) then ok := false
      done;
      !ok)

let backoff_capped =
  QCheck.Test.make ~name:"backoff schedule never exceeds the cap" ~count:300
    arb_policy_and_seed (fun (p, seed) ->
      let s = Rpc.Control.backoff_schedule p ~seed in
      Array.for_all (fun d -> d <= p.Rpc.Control.backoff_cap_ms +. 1e-9) s)

let backoff_jitter_bounds =
  QCheck.Test.make ~name:"backoff pauses stay inside the jitter envelope"
    ~count:300 arb_policy_and_seed (fun (p, seed) ->
      let s = Rpc.Control.backoff_schedule p ~seed in
      let ok = ref true in
      Array.iteri
        (fun i d ->
          let nominal =
            p.Rpc.Control.backoff_base_ms
            *. (p.Rpc.Control.backoff_multiplier ** float_of_int i)
          in
          let cap = p.Rpc.Control.backoff_cap_ms in
          let lo = Float.min cap (nominal *. (1.0 -. p.Rpc.Control.jitter_ratio))
          and hi = Float.min cap (nominal *. (1.0 +. p.Rpc.Control.jitter_ratio)) in
          if d < lo -. 1e-9 || d > hi +. 1e-9 then ok := false)
        s;
      !ok)

let backoff_deterministic =
  QCheck.Test.make ~name:"backoff schedule is a function of policy and seed"
    ~count:200 arb_policy_and_seed (fun (p, seed) ->
      Rpc.Control.backoff_schedule p ~seed = Rpc.Control.backoff_schedule p ~seed)

let backoff_within_budget =
  QCheck.Test.make ~name:"attempt deadlines plus pauses fit the retry budget"
    ~count:200 arb_policy_and_seed (fun (p, seed) ->
      let s = Rpc.Control.backoff_schedule p ~seed in
      let total = ref 0.0 in
      Array.iter (fun d -> total := !total +. d) s;
      for i = 1 to p.Rpc.Control.attempts do
        total := !total +. Rpc.Control.attempt_timeout p i
      done;
      !total <= Rpc.Control.retry_budget_ms p +. 1e-6)

(* A partition healed at T must not fail calls issued at or after T:
   the half-open fault window [at, heal_at) frees the very instant of
   the heal. *)
let echo_sign = Wire.Idl.signature ~arg:Wire.Idl.T_string ~res:Wire.Idl.T_string

let call_after_partition ~heal_at ~policy =
  let w = Helpers.make_world ~hosts:2 () in
  Helpers.in_sim w (fun () ->
      let server =
        Hrpc.Server.create w.stacks.(0) ~suite:Hrpc.Component.sunrpc_suite
          ~prog:4100 ~vers:1 ()
      in
      Hrpc.Server.register server ~procnum:1 ~sign:echo_sign (fun v -> v);
      Hrpc.Server.start server;
      let inj =
        Chaos.Injector.install
          [
            Chaos.Plan.partition ~group_a:[ "h0" ] ~group_b:[ "h1" ] ~at:0.0
              ~heal_at;
          ]
          w.net
      in
      Sim.Engine.sleep heal_at;
      let r =
        Hrpc.Client.call w.stacks.(1) (Hrpc.Server.binding server) ~procnum:1
          ~sign:echo_sign ~policy (Wire.Value.Str "after the heal")
      in
      Chaos.Injector.uninstall inj;
      r)

let partition_healed_never_errors =
  QCheck.Test.make ~name:"partition healed at T never errors after T" ~count:20
    (QCheck.make
       QCheck.Gen.(
         pair (float_range 100.0 3000.0)
           (pair (int_range 1 3) (float_range 50.0 400.0)))
       ~print:(fun (t, (a, ms)) -> Printf.sprintf "T=%.1f attempts=%d timeout=%.1f" t a ms))
    (fun (heal_at, (attempts, attempt_timeout_ms)) ->
      let policy =
        {
          Rpc.Control.default_policy with
          Rpc.Control.attempts;
          attempt_timeout_ms;
          backoff_base_ms = 20.0;
          backoff_cap_ms = 100.0;
        }
      in
      call_after_partition ~heal_at ~policy = Ok (Wire.Value.Str "after the heal"))

(* A call *issued during* the partition whose retry budget stretches
   past the heal succeeds: retries keep probing until an attempt lands
   in the healed window. *)
let retries_straddle_the_heal () =
  let w = Helpers.make_world ~hosts:2 () in
  let policy =
    {
      Rpc.Control.default_policy with
      Rpc.Control.attempts = 5;
      attempt_timeout_ms = 500.0;
      timeout_multiplier = 1.0;
      backoff_base_ms = 100.0;
      backoff_multiplier = 1.0;
      backoff_cap_ms = 100.0;
      jitter_ratio = 0.0;
    }
  in
  let heal_at = 1_500.0 in
  (* budget 500*5 + 100*4 = 2900 ms: attempts at ~0/600/1200/1800 —
     the fourth lands after the heal and must succeed. *)
  let r =
    Helpers.in_sim w (fun () ->
        let server =
          Hrpc.Server.create w.stacks.(0) ~suite:Hrpc.Component.sunrpc_suite
            ~prog:4200 ~vers:1 ()
        in
        Hrpc.Server.register server ~procnum:1 ~sign:echo_sign (fun v -> v);
        Hrpc.Server.start server;
        let inj =
          Chaos.Injector.install
            [
              Chaos.Plan.partition ~group_a:[ "h0" ] ~group_b:[ "h1" ] ~at:0.0
                ~heal_at;
            ]
            w.net
        in
        let r =
          Hrpc.Client.call w.stacks.(1) (Hrpc.Server.binding server) ~procnum:1
            ~sign:echo_sign ~policy (Wire.Value.Str "straddle")
        in
        Chaos.Injector.uninstall inj;
        (r, Sim.Engine.time ()))
  in
  (match r with
  | Ok (Wire.Value.Str "straddle"), t ->
      Helpers.check_bool "succeeded after the heal, within the budget" true
        (t >= heal_at && t <= Rpc.Control.retry_budget_ms policy)
  | Ok _, _ -> Alcotest.fail "wrong echo payload"
  | Error e, _ ->
      Alcotest.failf "call across the heal failed: %a" Rpc.Control.pp_error e)

let chaos_properties =
  [
    qtest backoff_monotone;
    qtest backoff_capped;
    qtest backoff_jitter_bounds;
    qtest backoff_deterministic;
    qtest backoff_within_budget;
    qtest partition_healed_never_errors;
    Alcotest.test_case "retries straddle the heal" `Quick retries_straddle_the_heal;
  ]

let suite = suite @ chaos_properties
