(* Tests for the concrete RPC systems: wire formats, servers, clients,
   the portmapper, and the raw suite. *)

open Helpers

let echo_sign = Wire.Idl.signature ~arg:Wire.Idl.T_string ~res:Wire.Idl.T_string

(* --- control --- *)

let control_xids_unique () =
  let a = Rpc.Control.next_xid () and b = Rpc.Control.next_xid () in
  check_bool "distinct" true (a <> b)

let control_retries () =
  let calls = ref 0 in
  let r =
    Rpc.Control.with_retries ~attempts:3 ~timeout:1.0 (fun ~timeout:_ ->
        incr calls;
        if !calls = 3 then Some "ok" else None)
  in
  check_bool "eventually succeeds" true (r = Some "ok");
  check_int "three attempts" 3 !calls

let control_retries_exhausted () =
  let timeouts = ref [] in
  let r =
    Rpc.Control.with_retries ~attempts:3 ~timeout:10.0 ~backoff:2.0 (fun ~timeout ->
        timeouts := timeout :: !timeouts;
        None)
  in
  check_bool "fails" true (r = None);
  check (Alcotest.list (Alcotest.float 1e-9)) "doubling backoff" [ 40.0; 20.0; 10.0 ]
    !timeouts

(* --- Sun RPC wire --- *)

let sunrpc_wire_roundtrip () =
  let call =
    Rpc.Sunrpc_wire.Call { xid = 77l; prog = 100003l; vers = 2l; procnum = 4l; body = "args" }
  in
  (match Rpc.Sunrpc_wire.decode (Rpc.Sunrpc_wire.encode call) with
  | Rpc.Sunrpc_wire.Call c ->
      check_bool "call fields" true
        (c.xid = 77l && c.prog = 100003l && c.vers = 2l && c.procnum = 4l && c.body = "args")
  | _ -> Alcotest.fail "expected call");
  List.iter
    (fun rbody ->
      match
        Rpc.Sunrpc_wire.decode
          (Rpc.Sunrpc_wire.encode (Rpc.Sunrpc_wire.Reply { rxid = 9l; rbody }))
      with
      | Rpc.Sunrpc_wire.Reply r -> check_bool "reply roundtrip" true (r.rbody = rbody)
      | _ -> Alcotest.fail "expected reply")
    [ Rpc.Sunrpc_wire.Success "data"; Prog_unavail; Proc_unavail; Garbage_args ]

let sunrpc_wire_rejects_garbage () =
  match Rpc.Sunrpc_wire.decode "short" with
  | exception Rpc.Sunrpc_wire.Bad_message _ -> ()
  | _ -> Alcotest.fail "garbage should fail"

(* --- Sun RPC end to end --- *)

let with_sun_server w f =
  in_sim w (fun () ->
      let server = Rpc.Sunrpc.create w.stacks.(0) ~service_overhead_ms:5.0 () in
      Rpc.Sunrpc.register server ~prog:300 ~vers:1 ~procnum:1 ~sign:echo_sign (fun v -> v);
      Rpc.Sunrpc.start server;
      f server)

let sunrpc_echo () =
  let w = make_world () in
  let r =
    with_sun_server w (fun server ->
        Rpc.Sunrpc.call w.stacks.(1) ~dst:(Rpc.Sunrpc.addr server) ~prog:300 ~vers:1
          ~procnum:1 ~sign:echo_sign (Wire.Value.Str "hello"))
  in
  check_bool "echo" true (r = Ok (Wire.Value.Str "hello"))

let sunrpc_null_proc () =
  let w = make_world () in
  let r =
    with_sun_server w (fun server ->
        Rpc.Sunrpc.call w.stacks.(1) ~dst:(Rpc.Sunrpc.addr server) ~prog:300 ~vers:1
          ~procnum:0
          ~sign:(Wire.Idl.signature ~arg:Wire.Idl.T_void ~res:Wire.Idl.T_void)
          Wire.Value.Void)
  in
  check_bool "null proc answers" true (r = Ok Wire.Value.Void)

let sunrpc_prog_unavail () =
  let w = make_world () in
  let r =
    with_sun_server w (fun server ->
        Rpc.Sunrpc.call w.stacks.(1) ~dst:(Rpc.Sunrpc.addr server) ~prog:999 ~vers:1
          ~procnum:1 ~sign:echo_sign (Wire.Value.Str "x"))
  in
  check_bool "prog unavailable" true (r = Error Rpc.Control.Prog_unavailable)

let sunrpc_proc_unavail () =
  let w = make_world () in
  let r =
    with_sun_server w (fun server ->
        Rpc.Sunrpc.call w.stacks.(1) ~dst:(Rpc.Sunrpc.addr server) ~prog:300 ~vers:1
          ~procnum:42 ~sign:echo_sign (Wire.Value.Str "x"))
  in
  check_bool "proc unavailable" true (r = Error Rpc.Control.Proc_unavailable)

let sunrpc_timeout () =
  let w = make_world () in
  let r, elapsed =
    in_sim w (fun () ->
        let t0 = Sim.Engine.time () in
        let r =
          Rpc.Sunrpc.call w.stacks.(1)
            ~dst:(Transport.Address.make (Transport.Netstack.ip w.stacks.(0)) 1234)
            ~prog:1 ~vers:1 ~procnum:1 ~sign:echo_sign ~timeout:10.0 ~attempts:2
            (Wire.Value.Str "x")
        in
        (r, Sim.Engine.time () -. t0))
  in
  check_bool "times out" true
    (match r with Error (Rpc.Control.Timeout _) -> true | _ -> false);
  (* 10 + 20 (doubled) ms of waiting *)
  check_bool "waited both attempts" true (elapsed >= 30.0)

let sunrpc_retransmit_survives_loss () =
  let w = make_world ~drop_probability:0.4 () in
  let oks =
    with_sun_server w (fun server ->
        let ok = ref 0 in
        for _ = 1 to 20 do
          match
            Rpc.Sunrpc.call w.stacks.(1) ~dst:(Rpc.Sunrpc.addr server) ~prog:300
              ~vers:1 ~procnum:1 ~sign:echo_sign ~timeout:50.0 ~attempts:8
              (Wire.Value.Str "m")
          with
          | Ok _ -> incr ok
          | Error _ -> ()
        done;
        !ok)
  in
  check_bool "most calls survive 40% loss" true (oks >= 18)

(* --- portmapper --- *)

let portmap_set_getport () =
  let w = make_world () in
  let r =
    in_sim w (fun () ->
        let pm = Rpc.Portmap.start w.stacks.(0) in
        Rpc.Portmap.set pm ~prog:100003 ~vers:2 ~protocol:Rpc.Portmap.P_udp ~port:2049;
        let found =
          Rpc.Portmap.getport w.stacks.(1)
            ~portmapper:(Transport.Netstack.ip w.stacks.(0))
            ~prog:100003 ~vers:2 ()
        in
        let missing =
          Rpc.Portmap.getport w.stacks.(1)
            ~portmapper:(Transport.Netstack.ip w.stacks.(0))
            ~prog:555 ~vers:1 ()
        in
        Rpc.Portmap.unset pm ~prog:100003 ~vers:2 ~protocol:Rpc.Portmap.P_udp;
        let gone =
          Rpc.Portmap.getport w.stacks.(1)
            ~portmapper:(Transport.Netstack.ip w.stacks.(0))
            ~prog:100003 ~vers:2 ()
        in
        (found, missing, gone))
  in
  check_bool "found" true (r = (Ok (Some 2049), Ok None, Ok None))

let portmap_remote_set () =
  let w = make_world () in
  let r =
    in_sim w (fun () ->
        let pm = Rpc.Portmap.start w.stacks.(0) in
        ignore pm;
        (* remote SET via the Sun RPC procedure itself *)
        let mapping =
          Wire.Value.Struct
            [
              ("prog", Wire.Value.Uint 42l);
              ("vers", Wire.Value.Uint 1l);
              ("prot", Wire.Value.Uint 17l);
              ("port", Wire.Value.Uint 777l);
            ]
        in
        let sign =
          Wire.Idl.signature
            ~arg:
              (Wire.Idl.T_struct
                 [ ("prog", Wire.Idl.T_uint); ("vers", T_uint); ("prot", T_uint); ("port", T_uint) ])
            ~res:Wire.Idl.T_bool
        in
        let dst =
          Transport.Address.make
            (Transport.Netstack.ip w.stacks.(0))
            Transport.Address.Well_known.sunrpc_portmapper
        in
        let set1 =
          Rpc.Sunrpc.call w.stacks.(1) ~dst ~prog:Rpc.Portmap.program
            ~vers:Rpc.Portmap.version ~procnum:Rpc.Portmap.proc_set ~sign mapping
        in
        let set2 =
          Rpc.Sunrpc.call w.stacks.(1) ~dst ~prog:Rpc.Portmap.program
            ~vers:Rpc.Portmap.version ~procnum:Rpc.Portmap.proc_set ~sign mapping
        in
        let port =
          Rpc.Portmap.getport w.stacks.(1)
            ~portmapper:(Transport.Netstack.ip w.stacks.(0))
            ~prog:42 ~vers:1 ()
        in
        (set1, set2, port))
  in
  match r with
  | Ok (Wire.Value.Bool true), Ok (Wire.Value.Bool false), Ok (Some 777) -> ()
  | _ -> Alcotest.fail "remote SET semantics wrong"

(* --- Courier --- *)

let courier_wire_roundtrip () =
  List.iter
    (fun msg ->
      check_bool "roundtrip" true
        (Rpc.Courier_wire.decode (Rpc.Courier_wire.encode msg) = msg))
    [
      Rpc.Courier_wire.Call
        { transaction = 3; prog = 2l; vers = 3; procnum = 5; body = "b" };
      Rpc.Courier_wire.Return { transaction = 3; body = "r" };
      Rpc.Courier_wire.Abort { transaction = 3; error = 7; body = "" };
      Rpc.Courier_wire.Reject { transaction = 3; code = Rpc.Courier_wire.No_such_procedure };
    ]

let with_courier_server w f =
  in_sim w (fun () ->
      let server = Rpc.Courier_rpc.create w.stacks.(0) ~port:5 () in
      Rpc.Courier_rpc.register server ~prog:2 ~vers:3 ~procnum:1 ~sign:echo_sign
        (fun v -> v);
      Rpc.Courier_rpc.register server ~prog:2 ~vers:3 ~procnum:2 ~sign:echo_sign
        (fun _ -> failwith "deliberate");
      Rpc.Courier_rpc.start server;
      f server)

let courier_echo_session () =
  let w = make_world () in
  let r =
    with_courier_server w (fun server ->
        let session = Rpc.Courier_rpc.connect w.stacks.(1) (Rpc.Courier_rpc.addr server) in
        let a =
          Rpc.Courier_rpc.call session ~prog:2 ~vers:3 ~procnum:1 ~sign:echo_sign
            (Wire.Value.Str "one")
        in
        let b =
          Rpc.Courier_rpc.call session ~prog:2 ~vers:3 ~procnum:1 ~sign:echo_sign
            (Wire.Value.Str "two")
        in
        Rpc.Courier_rpc.close session;
        (a, b))
  in
  check_bool "both calls on one session" true
    (r = (Ok (Wire.Value.Str "one"), Ok (Wire.Value.Str "two")))

let courier_reject_codes () =
  let w = make_world () in
  let r =
    with_courier_server w (fun server ->
        let dst = Rpc.Courier_rpc.addr server in
        let bad_prog =
          Rpc.Courier_rpc.call_once w.stacks.(1) ~dst ~prog:99 ~vers:3 ~procnum:1
            ~sign:echo_sign (Wire.Value.Str "x")
        in
        let bad_vers =
          Rpc.Courier_rpc.call_once w.stacks.(1) ~dst ~prog:2 ~vers:9 ~procnum:1
            ~sign:echo_sign (Wire.Value.Str "x")
        in
        let bad_proc =
          Rpc.Courier_rpc.call_once w.stacks.(1) ~dst ~prog:2 ~vers:3 ~procnum:9
            ~sign:echo_sign (Wire.Value.Str "x")
        in
        (bad_prog, bad_vers, bad_proc))
  in
  check_bool "reject mapping" true
    (r
    = ( Error Rpc.Control.Prog_unavailable,
        Error Rpc.Control.Prog_unavailable,
        Error Rpc.Control.Proc_unavailable ))

let courier_abort () =
  let w = make_world () in
  let r =
    with_courier_server w (fun server ->
        Rpc.Courier_rpc.call_once w.stacks.(1) ~dst:(Rpc.Courier_rpc.addr server)
          ~prog:2 ~vers:3 ~procnum:2 ~sign:echo_sign (Wire.Value.Str "x"))
  in
  match r with
  | Error (Rpc.Control.Protocol_error m) ->
      check_bool "abort carries message" true
        (String.length m > 0 && String.length m >= String.length "remote abort")
  | _ -> Alcotest.fail "expected abort"

(* --- raw --- *)

let rawrpc_native_payload () =
  let w = make_world () in
  let r =
    in_sim w (fun () ->
        let stop =
          Rpc.Rawrpc.serve w.stacks.(0) ~port:6000 ~service_overhead_ms:2.0
            (fun ~src:_ payload -> Some (String.uppercase_ascii payload))
            ()
        in
        let reply =
          Rpc.Rawrpc.call w.stacks.(1)
            ~dst:(Transport.Address.make (Transport.Netstack.ip w.stacks.(0)) 6000)
            "native-format"
        in
        stop ();
        reply)
  in
  check_bool "no framing added" true (r = Ok "NATIVE-FORMAT")

let rawrpc_silent_server_times_out () =
  let w = make_world () in
  let r =
    in_sim w (fun () ->
        let stop =
          Rpc.Rawrpc.serve w.stacks.(0) ~port:6001 (fun ~src:_ _ -> None) ()
        in
        let reply =
          Rpc.Rawrpc.call w.stacks.(1)
            ~dst:(Transport.Address.make (Transport.Netstack.ip w.stacks.(0)) 6001)
            ~timeout:20.0 ~attempts:2 "ignored"
        in
        stop ();
        reply)
  in
  check_bool "timeout" true
    (match r with Error (Rpc.Control.Timeout _) -> true | _ -> false)

let suite =
  [
    Alcotest.test_case "xids unique" `Quick control_xids_unique;
    Alcotest.test_case "retries succeed" `Quick control_retries;
    Alcotest.test_case "retries backoff" `Quick control_retries_exhausted;
    Alcotest.test_case "sunrpc wire roundtrip" `Quick sunrpc_wire_roundtrip;
    Alcotest.test_case "sunrpc wire garbage" `Quick sunrpc_wire_rejects_garbage;
    Alcotest.test_case "sunrpc echo" `Quick sunrpc_echo;
    Alcotest.test_case "sunrpc null proc" `Quick sunrpc_null_proc;
    Alcotest.test_case "sunrpc prog unavail" `Quick sunrpc_prog_unavail;
    Alcotest.test_case "sunrpc proc unavail" `Quick sunrpc_proc_unavail;
    Alcotest.test_case "sunrpc timeout" `Quick sunrpc_timeout;
    Alcotest.test_case "sunrpc retransmission" `Quick sunrpc_retransmit_survives_loss;
    Alcotest.test_case "portmap set/getport" `Quick portmap_set_getport;
    Alcotest.test_case "portmap remote set" `Quick portmap_remote_set;
    Alcotest.test_case "courier wire roundtrip" `Quick courier_wire_roundtrip;
    Alcotest.test_case "courier session" `Quick courier_echo_session;
    Alcotest.test_case "courier rejects" `Quick courier_reject_codes;
    Alcotest.test_case "courier abort" `Quick courier_abort;
    Alcotest.test_case "rawrpc native payload" `Quick rawrpc_native_payload;
    Alcotest.test_case "rawrpc timeout" `Quick rawrpc_silent_server_times_out;
  ]
