(* Unit and property tests for the simulation substrate. *)

open Helpers

(* --- Heap --- *)

let heap_pop_order () =
  let h = Sim.Heap.create ~leq:(fun a b -> a <= b) in
  List.iter (Sim.Heap.push h) [ 5; 1; 4; 1; 3; 9; 2 ];
  check (Alcotest.list Alcotest.int) "sorted" [ 1; 1; 2; 3; 4; 5; 9 ]
    (Sim.Heap.to_sorted_list h)

let heap_empty () =
  let h = Sim.Heap.create ~leq:(fun (a : int) b -> a <= b) in
  check_bool "empty" true (Sim.Heap.is_empty h);
  (match Sim.Heap.pop h with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "pop on empty should raise");
  Sim.Heap.push h 7;
  check_int "peek" 7 (Sim.Heap.peek h);
  check_int "length" 1 (Sim.Heap.length h);
  Sim.Heap.clear h;
  check_bool "cleared" true (Sim.Heap.is_empty h)

let heap_sorts_any_list =
  QCheck.Test.make ~name:"heap sorts like List.sort" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Sim.Heap.of_list ~leq:(fun a b -> a <= b) xs in
      Sim.Heap.to_sorted_list h = List.sort compare xs)

(* --- Rng --- *)

let rng_deterministic () =
  let a = Sim.Rng.create ~seed:42L and b = Sim.Rng.create ~seed:42L in
  for _ = 1 to 100 do
    check_bool "same stream" true (Sim.Rng.bits64 a = Sim.Rng.bits64 b)
  done

let rng_split_independent () =
  let a = Sim.Rng.create ~seed:42L in
  let b = Sim.Rng.split a in
  check_bool "split differs from parent" true (Sim.Rng.bits64 a <> Sim.Rng.bits64 b)

let rng_int_in_range =
  QCheck.Test.make ~name:"Rng.int stays in range" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, n) ->
      let rng = Sim.Rng.create ~seed:(Int64.of_int seed) in
      let v = Sim.Rng.int rng n in
      v >= 0 && v < n)

let rng_exponential_positive () =
  let rng = Sim.Rng.create ~seed:7L in
  for _ = 1 to 1000 do
    check_bool "positive" true (Sim.Rng.exponential rng ~mean:5.0 >= 0.0)
  done

let rng_shuffle_permutes =
  QCheck.Test.make ~name:"shuffle is a permutation" ~count:100
    QCheck.(pair small_int (list small_int))
    (fun (seed, xs) ->
      let arr = Array.of_list xs in
      let rng = Sim.Rng.create ~seed:(Int64.of_int seed) in
      Sim.Rng.shuffle rng arr;
      List.sort compare (Array.to_list arr) = List.sort compare xs)

(* --- Engine --- *)

let engine_virtual_time () =
  let w = make_world ~hosts:1 () in
  let times = ref [] in
  Sim.Engine.spawn w.engine (fun () ->
      Sim.Engine.sleep 10.0;
      times := Sim.Engine.time () :: !times;
      Sim.Engine.sleep 5.5;
      times := Sim.Engine.time () :: !times);
  Sim.Engine.run w.engine;
  check (Alcotest.list (Alcotest.float 1e-9)) "sleep advances clock" [ 15.5; 10.0 ]
    !times

let engine_fifo_same_instant () =
  let w = make_world ~hosts:1 () in
  let order = ref [] in
  for i = 1 to 5 do
    Sim.Engine.spawn w.engine (fun () -> order := i :: !order)
  done;
  Sim.Engine.run w.engine;
  check (Alcotest.list Alcotest.int) "FIFO at same timestamp" [ 1; 2; 3; 4; 5 ]
    (List.rev !order)

let engine_ivar_blocks () =
  let w = make_world ~hosts:1 () in
  let iv = Sim.Engine.Ivar.create () in
  let got = ref 0 in
  Sim.Engine.spawn w.engine (fun () -> got := Sim.Engine.Ivar.read iv);
  Sim.Engine.spawn w.engine (fun () ->
      Sim.Engine.sleep 3.0;
      Sim.Engine.Ivar.fill iv 42);
  Sim.Engine.run w.engine;
  check_int "ivar delivered" 42 !got

let engine_ivar_double_fill () =
  let iv = Sim.Engine.Ivar.create () in
  Sim.Engine.Ivar.fill iv 1;
  check_bool "fill_if_empty refuses" false (Sim.Engine.Ivar.fill_if_empty iv 2);
  (match Sim.Engine.Ivar.fill iv 2 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "second fill should raise");
  check (Alcotest.option Alcotest.int) "peek" (Some 1) (Sim.Engine.Ivar.peek iv)

let engine_ivar_timeout () =
  let w = make_world ~hosts:1 () in
  let iv = Sim.Engine.Ivar.create () in
  let r =
    in_sim w (fun () ->
        let a = Sim.Engine.Ivar.read_timeout iv 5.0 in
        let t_after = Sim.Engine.time () in
        Sim.Engine.Ivar.fill iv 9;
        let b = Sim.Engine.Ivar.read_timeout iv 5.0 in
        (a, t_after, b))
  in
  (match r with
  | None, 5.0, Some 9 -> ()
  | _ -> Alcotest.fail "timeout semantics wrong")

let engine_mailbox_fifo () =
  let w = make_world ~hosts:1 () in
  let mb = Sim.Engine.Mailbox.create () in
  let got =
    in_sim w (fun () ->
        Sim.Engine.Mailbox.send mb 1;
        Sim.Engine.Mailbox.send mb 2;
        Sim.Engine.Mailbox.send mb 3;
        let a = Sim.Engine.Mailbox.recv mb in
        let b = Sim.Engine.Mailbox.recv mb in
        let c = Sim.Engine.Mailbox.recv mb in
        [ a; b; c ])
  in
  check (Alcotest.list Alcotest.int) "fifo" [ 1; 2; 3 ] got

let engine_mailbox_timeout_no_lost_message () =
  (* A timed-out receiver must not swallow a message that arrives
     later. *)
  let w = make_world ~hosts:1 () in
  let mb = Sim.Engine.Mailbox.create () in
  let got = ref (-1) in
  Sim.Engine.spawn w.engine (fun () ->
      (match Sim.Engine.Mailbox.recv_timeout mb 2.0 with
      | Some _ -> Alcotest.fail "nothing should arrive before 2ms"
      | None -> ());
      got := Sim.Engine.Mailbox.recv mb);
  Sim.Engine.spawn w.engine (fun () ->
      Sim.Engine.sleep 10.0;
      Sim.Engine.Mailbox.send mb 77);
  Sim.Engine.run w.engine;
  check_int "late message delivered" 77 !got

let engine_process_failure () =
  let w = make_world ~hosts:1 () in
  Sim.Engine.spawn w.engine ~name:"crasher" (fun () -> failwith "boom");
  match Sim.Engine.run w.engine with
  | exception Sim.Engine.Process_failure (name, Failure msg) ->
      check_string "process name" "crasher" name;
      check_string "original exception" "boom" msg
  | exception e -> Alcotest.failf "wrong exception %s" (Printexc.to_string e)
  | () -> Alcotest.fail "failure should propagate"

let engine_run_until () =
  let w = make_world ~hosts:1 () in
  let fired = ref [] in
  Sim.Engine.at w.engine 5.0 (fun () -> fired := 5 :: !fired);
  Sim.Engine.at w.engine 15.0 (fun () -> fired := 15 :: !fired);
  Sim.Engine.run_until w.engine 10.0;
  check (Alcotest.list Alcotest.int) "only early event" [ 5 ] !fired;
  check_float_near "clock at deadline" 10.0 (Sim.Engine.now w.engine);
  Sim.Engine.run w.engine;
  check (Alcotest.list Alcotest.int) "rest runs" [ 15; 5 ] !fired

let engine_determinism () =
  (* Two identical runs execute the same number of events and end at
     the same virtual time. *)
  let run () =
    let w = make_world ~hosts:2 () in
    let mb = Sim.Engine.Mailbox.create () in
    Sim.Engine.spawn w.engine (fun () ->
        for i = 1 to 10 do
          Sim.Engine.sleep (float_of_int i);
          Sim.Engine.Mailbox.send mb i
        done);
    Sim.Engine.spawn w.engine (fun () ->
        for _ = 1 to 10 do
          ignore (Sim.Engine.Mailbox.recv mb);
          Sim.Engine.sleep 0.5
        done);
    Sim.Engine.run w.engine;
    (Sim.Engine.now w.engine, Sim.Engine.events_executed w.engine)
  in
  let a = run () and b = run () in
  check_bool "identical executions" true (a = b)

(* --- Stats --- *)

let stats_basic () =
  let s = Sim.Stats.create ~name:"t" () in
  List.iter (Sim.Stats.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  check_int "count" 4 (Sim.Stats.count s);
  check_float_near "mean" 2.5 (Sim.Stats.mean s);
  check_float_near "min" 1.0 (Sim.Stats.min_value s);
  check_float_near "max" 4.0 (Sim.Stats.max_value s);
  check_float_near "median" 2.5 (Sim.Stats.median s);
  check_float_near "p0" 1.0 (Sim.Stats.percentile s 0.0);
  check_float_near "p100" 4.0 (Sim.Stats.percentile s 100.0)

let stats_stddev () =
  let s = Sim.Stats.create () in
  List.iter (Sim.Stats.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  check_float_near "population stddev" 2.0 (Sim.Stats.stddev s)

let stats_percentile_interpolates =
  QCheck.Test.make ~name:"percentile within [min,max]" ~count:200
    QCheck.(pair (list_of_size (Gen.int_range 1 50) (float_range (-1000.) 1000.)) (float_range 0. 100.))
    (fun (xs, p) ->
      let s = Sim.Stats.create () in
      List.iter (Sim.Stats.add s) xs;
      let v = Sim.Stats.percentile s p in
      v >= Sim.Stats.min_value s -. 1e-9 && v <= Sim.Stats.max_value s +. 1e-9)

let histogram_counts () =
  let h = Sim.Stats.Histogram.create ~lo:0.0 ~hi:10.0 ~bins:5 in
  List.iter (Sim.Stats.Histogram.add h) [ -1.0; 0.0; 1.9; 2.0; 9.99; 10.0; 50.0 ];
  check_int "underflow" 1 (Sim.Stats.Histogram.underflow h);
  check_int "overflow" 2 (Sim.Stats.Histogram.overflow h);
  check (Alcotest.array Alcotest.int) "bins" [| 2; 1; 0; 0; 1 |]
    (Sim.Stats.Histogram.counts h);
  check_int "total" 7 (Sim.Stats.Histogram.total h)

(* --- Topology --- *)

let topology_delays () =
  let topo = Sim.Topology.create ~default_latency_ms:1.0 ~default_per_byte_ms:0.001 ~loopback_ms:0.05 () in
  let a = Sim.Topology.add_host topo "a" and b = Sim.Topology.add_host topo "b" in
  check_float_near "loopback" 0.05 (Sim.Topology.delay topo ~src:a ~dst:a ~bytes:1000);
  check_float_near "default" 2.0 (Sim.Topology.delay topo ~src:a ~dst:b ~bytes:1000);
  Sim.Topology.set_link topo a b ~latency_ms:10.0 ~per_byte_ms:0.0;
  check_float_near "override" 10.0 (Sim.Topology.delay topo ~src:b ~dst:a ~bytes:1000)

let topology_duplicate_host () =
  let topo = Sim.Topology.create () in
  ignore (Sim.Topology.add_host topo "x");
  match Sim.Topology.add_host topo "x" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate host should raise"

(* --- Trace --- *)

let trace_ring () =
  let tr = Sim.Trace.create ~capacity:3 () in
  Sim.Trace.record tr ~time:1.0 ~tag:"t" "dropped when disabled";
  check_int "disabled records nothing" 0 (List.length (Sim.Trace.lines tr));
  Sim.Trace.enable tr;
  List.iter (fun i -> Sim.Trace.record tr ~time:(float_of_int i) ~tag:"t" (string_of_int i))
    [ 1; 2; 3; 4 ];
  let lines = Sim.Trace.lines tr in
  check_int "capacity bounds" 3 (List.length lines);
  check_string "oldest dropped" "2" (match lines with (_, _, m) :: _ -> m | [] -> "")

(* Regression: recordf on a disabled trace must not render its
   arguments. A %t printer with a side effect detects any rendering. *)
let trace_recordf_lazy () =
  let tr = Sim.Trace.create () in
  let rendered = ref 0 in
  let probe ppf =
    incr rendered;
    Format.pp_print_string ppf "probe"
  in
  Sim.Trace.recordf tr ~time:1.0 ~tag:"t" "value=%t" probe;
  check_int "disabled recordf renders nothing" 0 !rendered;
  check_int "disabled recordf stores nothing" 0 (List.length (Sim.Trace.lines tr));
  Sim.Trace.enable tr;
  Sim.Trace.recordf tr ~time:2.0 ~tag:"t" "value=%t" probe;
  check_int "enabled recordf renders once" 1 !rendered;
  check_string "enabled recordf stores line" "value=probe"
    (match Sim.Trace.lines tr with [ (_, _, m) ] -> m | _ -> "")

let suite =
  [
    Alcotest.test_case "heap pop order" `Quick heap_pop_order;
    Alcotest.test_case "heap empty ops" `Quick heap_empty;
    qtest heap_sorts_any_list;
    Alcotest.test_case "rng deterministic" `Quick rng_deterministic;
    Alcotest.test_case "rng split" `Quick rng_split_independent;
    qtest rng_int_in_range;
    Alcotest.test_case "rng exponential" `Quick rng_exponential_positive;
    qtest rng_shuffle_permutes;
    Alcotest.test_case "virtual time" `Quick engine_virtual_time;
    Alcotest.test_case "FIFO at instant" `Quick engine_fifo_same_instant;
    Alcotest.test_case "ivar blocks" `Quick engine_ivar_blocks;
    Alcotest.test_case "ivar double fill" `Quick engine_ivar_double_fill;
    Alcotest.test_case "ivar timeout" `Quick engine_ivar_timeout;
    Alcotest.test_case "mailbox fifo" `Quick engine_mailbox_fifo;
    Alcotest.test_case "mailbox timeout keeps messages" `Quick
      engine_mailbox_timeout_no_lost_message;
    Alcotest.test_case "process failure propagates" `Quick engine_process_failure;
    Alcotest.test_case "run_until" `Quick engine_run_until;
    Alcotest.test_case "determinism" `Quick engine_determinism;
    Alcotest.test_case "stats basics" `Quick stats_basic;
    Alcotest.test_case "stats stddev" `Quick stats_stddev;
    qtest stats_percentile_interpolates;
    Alcotest.test_case "histogram" `Quick histogram_counts;
    Alcotest.test_case "topology delays" `Quick topology_delays;
    Alcotest.test_case "topology duplicate host" `Quick topology_duplicate_host;
    Alcotest.test_case "trace ring" `Quick trace_ring;
    Alcotest.test_case "trace recordf lazy when disabled" `Quick trace_recordf_lazy;
  ]

(* pretty-printer smoke tests: they must never raise and must contain
   the load-bearing numbers *)

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let pp_smoke () =
  let s = Sim.Stats.create ~name:"lat" () in
  List.iter (Sim.Stats.add s) [ 1.0; 2.0; 3.0 ];
  let rendered = Format.asprintf "%a" Sim.Stats.pp s in
  check_bool "stats pp mentions mean" true (contains ~needle:"mean=2.00" rendered);
  let h = Sim.Stats.Histogram.create ~lo:0.0 ~hi:10.0 ~bins:2 in
  Sim.Stats.Histogram.add h 1.0;
  check_bool "histogram pp" true (String.length (Format.asprintf "%a" Sim.Stats.Histogram.pp h) > 0);
  let tr = Sim.Trace.create () in
  Sim.Trace.enable tr;
  Sim.Trace.record tr ~time:1.0 ~tag:"t" "m";
  check_bool "trace pp" true (String.length (Format.asprintf "%a" Sim.Trace.pp tr) > 0)

let pp_cases = [ Alcotest.test_case "pp smoke" `Quick pp_smoke ]

let suite = suite @ pp_cases
