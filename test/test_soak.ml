(* Whole-system soak: a mixed workload over virtual time must succeed
   completely and — because the simulator is deterministic — reproduce
   itself exactly run for run. *)

open Helpers

(* One mixed-workload run; returns (ok, failures, events, end_time,
   bytes). *)
let run_soak () =
  let scn = Workload.Scenario.build () in
  let failures = ref 0 and ok = ref 0 in
  Workload.Scenario.in_sim scn (fun () ->
      let _installed = Services.Setup.install scn in
      let rng = Sim.Rng.create ~seed:0x50AEL in
      let zipf = Workload.Zipf.create ~n:8 ~s:1.0 in
      let hosts = Array.of_list (Workload.Namegen.hosts ~count:8 ~zone:scn.zone) in
      let hns = Workload.Scenario.new_hns scn ~on:scn.client_stack in
      let filing = Services.Filing.create hns in
      let mail = Services.Mail.create hns ~from:"soak@hcs" in
      for _ = 1 to 60 do
        Sim.Engine.sleep (Sim.Rng.float rng 10_000.0);
        let succeeded =
          match Sim.Rng.int rng 4 with
          | 0 ->
              let host = hosts.(Workload.Zipf.sample zipf rng) in
              (match
                 Hns.Client.resolve hns ~query_class:Hns.Query_class.host_address
                   ~payload_ty:Hns.Nsm_intf.host_address_payload_ty
                   (Hns.Hns_name.make ~context:scn.bind_context ~name:host)
               with
              | Ok (Some _) -> true
              | _ -> false)
          | 1 ->
              Result.is_ok
                (Services.Filing.fetch filing (Services.Setup.unix_file_name scn "todo"))
          | 2 ->
              Result.is_ok
                (Services.Mail.send mail
                   ~recipient:(Services.Setup.user_name scn "alice")
                   ~subject:"s" ~body:"b")
          | _ -> (
              match
                Hns.Client.resolve hns ~query_class:Hns.Query_class.hrpc_binding
                  ~payload_ty:Hns.Nsm_intf.binding_payload_ty ~service:scn.service_name
                  (Hns.Hns_name.make ~context:scn.bind_context ~name:scn.service_host)
              with
              | Ok (Some _) -> true
              | _ -> false)
        in
        if succeeded then incr ok else incr failures
      done);
  ( !ok,
    !failures,
    Sim.Engine.events_executed scn.engine,
    Sim.Engine.now scn.engine,
    Transport.Netstack.bytes_sent scn.net )

let soak_no_failures () =
  let ok, failures, _, _, _ = run_soak () in
  check_int "all succeed" 60 ok;
  check_int "no failures" 0 failures

let soak_reproducible () =
  let _, _, e1, t1, b1 = run_soak () in
  let _, _, e2, t2, b2 = run_soak () in
  check_int "same event count" e1 e2;
  check_bool "same end time" true (t1 = t2);
  check_int "same bytes on the wire" b1 b2

(* --- chaos soak: resolutions under rolling partitions ------------- *)

(* 10k warm resolutions while the client is repeatedly partitioned
   from the designated NSM host. An alternate NSM rides on rarotonga,
   so every outage is survivable by failover; the run must stay above
   the success threshold, and the netstack's conservation invariant
   (sent = received + dropped) must hold with the oracle dropping
   packets mid-flight. *)
let chaos_soak () =
  let resolutions = 10_000 in
  let scn = Workload.Scenario.build () in
  let hns =
    Workload.Scenario.new_hns ~rpc_policy:Test_chaos.chaos_policy scn
      ~on:scn.client_stack
  in
  let ok = ref 0 and failures = ref 0 in
  let faults =
    Workload.Scenario.in_sim scn (fun () ->
        Test_chaos.register_alternate scn;
        (* One-second outages every four seconds, covering the whole
           run however far the slow (faulted) resolutions stretch it. *)
        let plan =
          List.init 400 (fun k ->
              Chaos.Plan.partition ~group_a:[ "tonga" ] ~group_b:[ "niue" ]
                ~at:(float_of_int k *. 4_000.0)
                ~heal_at:((float_of_int k *. 4_000.0) +. 1_000.0))
        in
        let inj = Chaos.Injector.install plan scn.net in
        for _ = 1 to resolutions do
          Sim.Engine.sleep 5.0;
          match
            Hns.Client.resolve hns ~query_class:Hns.Query_class.hrpc_binding
              ~payload_ty:Hns.Nsm_intf.binding_payload_ty
              ~service:scn.service_name
              (Hns.Hns_name.make ~context:scn.bind_context
                 ~name:scn.service_host)
          with
          | Ok (Some _) -> incr ok
          | _ -> incr failures
        done;
        Chaos.Injector.uninstall inj;
        Chaos.Injector.faults_injected inj)
  in
  check_int "every resolution accounted for" resolutions (!ok + !failures);
  check_bool "the partitions actually bit" true (faults > 0);
  let success = float_of_int !ok /. float_of_int resolutions in
  if success < 0.95 then
    Alcotest.failf "success ratio %.4f below threshold (%d/%d ok)" success !ok
      resolutions;
  check_int "packet conservation: sent = received + dropped"
    (Transport.Netstack.packets_sent scn.net)
    (Transport.Netstack.packets_received scn.net
    + Transport.Netstack.packets_dropped scn.net)

let suite =
  [
    Alcotest.test_case "soak: no failures" `Slow soak_no_failures;
    Alcotest.test_case "soak: reproducible" `Slow soak_reproducible;
    Alcotest.test_case "soak: chaos resolutions under rolling partitions" `Slow
      chaos_soak;
  ]
