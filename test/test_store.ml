(* Tests for the durable meta-store: the simulated disk's cost model
   and crash semantics, the CRC-framed WAL (group commit, torn tails,
   segment rotation, compaction), checkpointing snapshots, the
   byte-bounded journal, and Durable — the zone spill/recovery layer,
   including the restarted-primary-resumes-IXFR regression. *)

open Helpers

let mk_a name ip = Dns.Rr.make (Dns.Name.of_string name) (Dns.Rr.A ip)
let zname = Dns.Name.of_string "z"

let counter_value name =
  match Obs.Metrics.find name with
  | Some (Obs.Metrics.Count n) -> n
  | _ -> 0

(* --- the simulated disk --------------------------------------------- *)

let disk_charges_calibrated_costs () =
  let w = make_world ~hosts:1 () in
  let seek_then_stream, fsync_cost, reseek =
    in_sim w (fun () ->
        let d = Store.Disk.create () in
        let c = Store.Disk.cost d in
        let t0 = Sim.Engine.time () in
        ignore (Store.Disk.append d ~file:"f" (String.make 1000 'x'));
        let t1 = Sim.Engine.time () in
        (* The head is already at the file's tail: no second seek. *)
        ignore (Store.Disk.append d ~file:"f" (String.make 1000 'x'));
        let t2 = Sim.Engine.time () in
        Store.Disk.fsync d ~file:"f";
        let t3 = Sim.Engine.time () in
        (* The fsync parked the head; the next append seeks again. *)
        ignore (Store.Disk.append d ~file:"f" "y");
        let t4 = Sim.Engine.time () in
        ( (t1 -. t0, t2 -. t1, c),
          t3 -. t2,
          t4 -. t3 ))
  in
  let first, second, c = seek_then_stream in
  check_float_near "first append = seek + 1000 bytes"
    (c.Store.Disk.seek_ms +. (1000.0 *. c.Store.Disk.per_byte_ms))
    first;
  check_float_near "sequential append streams without a seek"
    (1000.0 *. c.Store.Disk.per_byte_ms)
    second;
  check_float_near "fsync settles the platter" c.Store.Disk.fsync_ms fsync_cost;
  check_float_near "post-sync append re-seeks"
    (c.Store.Disk.seek_ms +. c.Store.Disk.per_byte_ms)
    reseek

let disk_crash_drops_unsynced_bytes () =
  let d = Store.Disk.create () in
  ignore (Store.Disk.append d ~file:"f" "hello");
  Store.Disk.fsync d ~file:"f";
  ignore (Store.Disk.append d ~file:"f" " world");
  check_int "size counts pending bytes" 11 (Store.Disk.size d ~file:"f");
  Store.Disk.crash d;
  check_string "only the synced prefix survives" "hello"
    (Store.Disk.durable_contents d ~file:"f");
  check_int "one crash counted" 1 (Store.Disk.crashes d);
  check_int "a clean crash tears nothing" 0 (Store.Disk.torn_writes d)

let torn_writes_are_seeded_and_deterministic () =
  let run seed =
    let d = Store.Disk.create ~name:"flaky" () in
    let inj =
      Chaos.Injector.install_disk ~seed
        [ Chaos.Plan.torn_write ~host:"flaky" ~at:0.0 ~probability:1.0 () ]
        d
    in
    ignore (Store.Disk.append d ~file:"f" (String.make 40 'a'));
    Store.Disk.crash d;
    let kept = Store.Disk.durable_contents d ~file:"f" in
    let trace = Chaos.Injector.disk_trace inj in
    Chaos.Injector.uninstall_disk inj;
    (kept, trace, Store.Disk.torn_writes d)
  in
  let kept_a, trace_a, torn_a = run 0x7E57L in
  let kept_b, trace_b, _ = run 0x7E57L in
  check_bool "torn prefix is non-empty" true (String.length kept_a > 0);
  check_bool "torn prefix is a strict prefix" true (String.length kept_a <= 40);
  check_int "torn write counted" 1 torn_a;
  check_string "same seed keeps the same prefix" kept_a kept_b;
  check_bool "trace recorded the tear" true (List.length trace_a = 1);
  check_bool "same seed, byte-identical trace" true (trace_a = trace_b)

(* --- the write-ahead log -------------------------------------------- *)

let wal_replay_round_trips () =
  let w = make_world ~hosts:1 () in
  let records, torn, scanned =
    in_sim w (fun () ->
        let d = Store.Disk.create ~cost:Store.Disk.free_cost () in
        let wal = Store.Wal.create d in
        List.iter (Store.Wal.append wal) [ "alpha"; "bravo"; "charlie" ];
        let r = Store.Wal.replay d in
        (r.Store.Wal.records, r.Store.Wal.torn_tail, r.Store.Wal.bytes_scanned))
  in
  check_bool "records replay in append order" true
    (records = [ "alpha"; "bravo"; "charlie" ]);
  check_bool "no torn tail" false torn;
  check_bool "framing overhead is visible" true (scanned > 5 + 5 + 7)

let wal_torn_tail_stops_replay () =
  let w = make_world ~hosts:1 () in
  let records, torn =
    in_sim w (fun () ->
        let d = Store.Disk.create ~cost:Store.Disk.free_cost () in
        let wal = Store.Wal.create d in
        Store.Wal.append wal "good-1";
        Store.Wal.append wal "good-2";
        (* A power loss mid-frame: garbage lands after the committed
           records and becomes durable. *)
        let seg = Printf.sprintf "%s.%06d.wal" (Store.Wal.base wal) 0 in
        ignore (Store.Disk.append d ~file:seg "XXXXXXXXXX");
        Store.Disk.fsync d ~file:seg;
        let r = Store.Wal.replay d in
        (r.Store.Wal.records, r.Store.Wal.torn_tail))
  in
  check_bool "intact prefix replays" true (records = [ "good-1"; "good-2" ]);
  check_bool "the bad frame marks a torn tail" true torn

let wal_group_commit_shares_fsyncs () =
  let w = make_world ~hosts:1 () in
  let appends, commits, records =
    in_sim w (fun () ->
        let d = Store.Disk.create () in
        let wal = Store.Wal.create d in
        let mb = Sim.Engine.Mailbox.create () in
        for i = 1 to 4 do
          Sim.Engine.spawn_child (fun () ->
              Store.Wal.append wal (Printf.sprintf "r%d" i);
              Sim.Engine.Mailbox.send mb i)
        done;
        for _ = 1 to 4 do
          ignore (Sim.Engine.Mailbox.recv mb)
        done;
        let r = Store.Wal.replay d in
        (Store.Wal.appends wal, Store.Wal.group_commits wal, r.Store.Wal.records))
  in
  check_int "four appends" 4 appends;
  check_bool "concurrent appends share commits" true (commits < appends);
  check_int "every record is durable on return" 4 (List.length records)

let wal_rotates_segments () =
  let w = make_world ~hosts:1 () in
  let segments, records =
    in_sim w (fun () ->
        let d = Store.Disk.create ~cost:Store.Disk.free_cost () in
        let wal = Store.Wal.create ~segment_bytes:64 d in
        let payloads = List.init 8 (fun i -> Printf.sprintf "record-%02d-aaaaaaaa" i) in
        List.iter (Store.Wal.append wal) payloads;
        let r = Store.Wal.replay d in
        (Store.Wal.segments wal, r.Store.Wal.records = payloads))
  in
  check_bool "small segment size forces rotation" true (segments > 1);
  check_bool "replay crosses segment boundaries in order" true records

let wal_compaction_coalesces () =
  let w = make_world ~hosts:1 () in
  let ratio, records, bytes_after =
    in_sim w (fun () ->
        let d = Store.Disk.create ~cost:Store.Disk.free_cost () in
        let wal = Store.Wal.create d in
        List.iter (Store.Wal.append wal)
          [ "k1=a"; "k2=b"; "k1=c"; "k1=d"; "k2=e" ];
        let before = Store.Wal.bytes wal in
        (* Keep only the last record per key. *)
        let coalesce rs =
          let seen = Hashtbl.create 8 in
          List.rev
            (List.fold_left
               (fun acc r ->
                 let k = List.hd (String.split_on_char '=' r) in
                 if Hashtbl.mem seen k then acc
                 else begin
                   Hashtbl.add seen k ();
                   r :: acc
                 end)
               [] (List.rev rs))
        in
        let ratio = Store.Wal.compact wal ~coalesce in
        let r = Store.Wal.replay d in
        check_bool "log shrank" true (Store.Wal.bytes wal < before);
        (ratio, r.Store.Wal.records, Store.Wal.bytes wal))
  in
  check_bool "compaction ratio > 1" true (ratio > 1.0);
  check_bool "only the survivors remain" true
    (List.sort String.compare records = [ "k1=d"; "k2=e" ]);
  check_bool "rewritten image is non-empty" true (bytes_after > 0)

(* Appends racing a compaction pass: before the in-compact guard, a
   frame written while the pass slept in a disk charge landed as
   pending bytes in a segment the pass then deleted — acknowledged,
   yet absent from the recovered log. *)
let wal_compaction_races_appends () =
  let w = make_world ~hosts:1 () in
  let acked, replayed =
    in_sim w (fun () ->
        (* Real disk costs so the pass yields mid-flight: that is the
           window the guard has to close. *)
        let d = Store.Disk.create () in
        let wal = Store.Wal.create d in
        List.iter (Store.Wal.append wal) [ "base-1"; "base-2" ];
        let acked = ref [] in
        for i = 1 to 4 do
          Sim.Engine.spawn_child ~name:(Printf.sprintf "writer-%d" i)
            (fun () ->
              Sim.Engine.sleep (float_of_int i *. 0.5);
              let r = Printf.sprintf "racer-%d" i in
              Store.Wal.append wal r;
              acked := r :: !acked)
        done;
        (* Compact while writer 1 sleeps in its write's seek charge
           and the later writers arrive mid-pass. *)
        Sim.Engine.sleep 1.0;
        ignore (Store.Wal.compact wal ~coalesce:(fun rs -> rs));
        Sim.Engine.sleep 500.0;
        let r = Store.Wal.replay d in
        (List.rev !acked, r.Store.Wal.records))
  in
  check_int "every racing append returned" 4 (List.length acked);
  List.iter
    (fun r ->
      check_bool (Printf.sprintf "acked %s survives the compaction" r) true
        (List.mem r replayed))
    ("base-1" :: "base-2" :: acked);
  check_int "no record was duplicated by the rewrite"
    (List.length replayed)
    (List.length (List.sort_uniq String.compare replayed))

(* --- snapshots ------------------------------------------------------ *)

let snapshots_prune_and_fall_back () =
  let w = make_world ~hosts:1 () in
  in_sim w (fun () ->
      let d = Store.Disk.create ~cost:Store.Disk.free_cost () in
      Store.Snapshot.save d ~serial:5l "imageA";
      Store.Snapshot.save d ~serial:9l "imageB";
      (match Store.Snapshot.load_latest d with
      | Some (9l, "imageB") -> ()
      | _ -> Alcotest.fail "latest snapshot should be serial 9");
      Store.Snapshot.save d ~serial:12l "imageC";
      check_bool "keep=2 prunes the oldest" true
        (Store.Snapshot.on_disk d = [ 12l; 9l ]);
      (* A corrupt newer snapshot must not poison recovery. *)
      let bogus = Printf.sprintf "snap.%010ld.snap" 15l in
      ignore (Store.Disk.append d ~file:bogus "garbage-frame");
      Store.Disk.fsync d ~file:bogus;
      check_bool "corrupt snapshot is visible on disk" true
        (Store.Snapshot.on_disk d = [ 15l; 12l; 9l ]);
      match Store.Snapshot.load_latest d with
      | Some (12l, "imageC") -> ()
      | _ -> Alcotest.fail "load should fall back past the corrupt snapshot")

(* --- the byte-bounded journal --------------------------------------- *)

let journal_sheds_by_bytes () =
  let j = Dns.Journal.create ~max_deltas:100 ~max_bytes:400 () in
  let fat i =
    [ Dns.Journal.Put (mk_a (Printf.sprintf "a-very-long-owner-name-%02d.z" i) 1l) ]
  in
  for i = 1 to 10 do
    Dns.Journal.record j
      ~from_serial:(Int32.of_int i)
      ~to_serial:(Int32.of_int (i + 1))
      (fat i)
  done;
  check_bool "retention stayed under the byte bound" true
    (Dns.Journal.bytes j <= 400);
  check_bool "old deltas were shed" true (Dns.Journal.truncations j > 0);
  check_bool "some deltas survive" true (Dns.Journal.length j >= 1);
  match List.rev (Dns.Journal.deltas j) with
  | newest :: _ ->
      check_bool "the newest delta always survives" true
        (Int32.equal newest.Dns.Journal.to_serial 11l)
  | [] -> Alcotest.fail "journal emptied below one delta"

(* --- chaos plan: torn-write validation ------------------------------ *)

let torn_write_plan_validates () =
  let rejected f =
    match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  check_bool "probability > 1 rejected" true
    (rejected (fun () ->
         Chaos.Plan.torn_write ~host:"d" ~at:0.0 ~probability:1.5 ()));
  check_bool "empty host rejected" true
    (rejected (fun () ->
         Chaos.Plan.torn_write ~host:"" ~at:0.0 ~probability:0.5 ()));
  let s =
    Chaos.Plan.to_string
      [ Chaos.Plan.torn_write ~host:"d0" ~at:0.0 ~probability:0.5 () ]
  in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
    at 0
  in
  check_bool "pp names the fault" true (contains s "torn-write")

(* --- Durable: spill, crash matrix, recovery ------------------------- *)

let key k = Dns.Name.of_string (Printf.sprintf "k%d.z" k)

let apply_update server i op =
  let ops =
    match op with
    | `Set (k, v) ->
        [
          Dns.Msg.Delete_rrset (key k, Dns.Rr.T_a);
          Dns.Msg.Add (mk_a (Printf.sprintf "k%d.z" k) (Int32.of_int v));
        ]
    | `Del k -> [ Dns.Msg.Delete_name (key k) ]
  in
  let reply =
    Dns.Server.handle server (Dns.Msg.update_request ~id:(i land 0xFFFF) ~zone:zname ops)
  in
  if reply.Dns.Msg.rcode <> Dns.Msg.No_error then
    Alcotest.failf "update %d refused" i

let crash_matrix () =
  let w = make_world ~hosts:1 () in
  in_sim w (fun () ->
      let zone = Dns.Zone.simple ~origin:zname [ mk_a "h.z" 7l ] in
      let disk = Store.Disk.create ~name:"d0" () in
      let _d = Dns.Durable.attach disk zone in
      let server = Dns.Server.create w.stacks.(0) ~allow_update:true () in
      Dns.Server.add_zone server zone;
      (* After the ack: the delta was fsynced before the update path
         returned, so a crash loses nothing. *)
      apply_update server 1 (`Set (1, 11));
      let committed = Dns.Zone.serial zone in
      Store.Disk.crash disk;
      let r1 =
        match Dns.Durable.recover disk with
        | Some r -> r
        | None -> Alcotest.fail "recovery found no image"
      in
      check_bool "crash after ack: update survives" true
        (Int32.equal (Dns.Zone.serial r1.Dns.Durable.zone) committed);
      check_bool "clean image, no torn tail" false r1.Dns.Durable.torn_tail;
      (* During the commit: the frame's bytes are on the platter but
         unsynced when the power fails, and the tear leaves a partial
         frame the CRC rejects. *)
      let inj =
        Chaos.Injector.install_disk
          [ Chaos.Plan.torn_write ~host:"d0" ~at:0.0 ~probability:1.0 () ]
          disk
      in
      Sim.Engine.spawn_child (fun () ->
          try apply_update server 2 (`Set (2, 22))
          with _ -> () (* the machine died under this update *));
      Sim.Engine.sleep 1.0 (* inside the seek: written, not yet synced *);
      Store.Disk.crash disk;
      Chaos.Injector.uninstall_disk inj;
      check_int "the tear was recorded" 1 (Store.Disk.torn_writes disk);
      let r2 =
        match Dns.Durable.recover disk with
        | Some r -> r
        | None -> Alcotest.fail "recovery found no image"
      in
      check_bool "crash during commit: unacked update lost" true
        (Int32.equal (Dns.Zone.serial r2.Dns.Durable.zone) committed);
      check_bool "the torn tail was detected" true r2.Dns.Durable.torn_tail;
      (* After recovery: re-attach must not let the torn garbage
         swallow new records; a further committed update survives the
         next crash. *)
      let zone2 = r2.Dns.Durable.zone in
      let _d2 = Dns.Durable.attach disk zone2 in
      let server2 = Dns.Server.create w.stacks.(0) ~allow_update:true ~port:5300 () in
      Dns.Server.add_zone server2 zone2;
      apply_update server2 3 (`Set (3, 33));
      let committed2 = Dns.Zone.serial zone2 in
      Store.Disk.crash disk;
      let r3 =
        match Dns.Durable.recover disk with
        | Some r -> r
        | None -> Alcotest.fail "recovery found no image"
      in
      check_bool "post-recovery commit survives the next crash" true
        (Int32.equal (Dns.Zone.serial r3.Dns.Durable.zone) committed2);
      check_bool "hygiene rewrote the torn tail" false r3.Dns.Durable.torn_tail)

let restarted_primary_resumes_ixfr () =
  let w = make_world ~hosts:3 () in
  in_sim w (fun () ->
      let zone = Dns.Zone.simple ~origin:zname [ mk_a "h.z" 7l ] in
      let disk = Store.Disk.create () in
      let _d = Dns.Durable.attach disk zone in
      let primary = Dns.Server.create w.stacks.(0) ~allow_update:true () in
      Dns.Server.add_zone primary zone;
      Dns.Server.start primary;
      let replica_server = Dns.Server.create w.stacks.(1) () in
      Dns.Server.start replica_server;
      (* No NOTIFY registration: the replica holds its initial copy
         while the primary takes writes. *)
      let secondary =
        Dns.Secondary.attach replica_server ~primary:(Dns.Server.addr primary)
          ~zone:zname ~refresh_ms:120_000.0 ()
      in
      let s0 = Dns.Secondary.serial secondary in
      let update rr =
        match
          Dns.Update.add_rr w.stacks.(2) ~server:(Dns.Server.addr primary)
            ~zone:zname rr
        with
        | Ok () -> ()
        | Error e -> Alcotest.failf "update failed: %a" Dns.Update.pp_error e
      in
      update (mk_a "a.z" 1l);
      update (mk_a "b.z" 2l);
      update (mk_a "c.z" 3l);
      let target = Dns.Zone.serial zone in
      (* The primary host dies. *)
      Dns.Server.stop primary;
      Store.Disk.crash disk;
      let r =
        match Dns.Durable.recover disk with
        | Some r -> r
        | None -> Alcotest.fail "recovery found no image"
      in
      check_bool "recovered at the last durable serial" true
        (Int32.equal (Dns.Zone.serial r.Dns.Durable.zone) target);
      (* Replay re-journalled the deltas: the restarted primary can
         bridge the replica's serial incrementally. *)
      check_bool "journal bridges the replica's serial" true
        (Dns.Journal.since (Dns.Zone.journal r.Dns.Durable.zone) ~serial:s0
        <> None);
      let primary2 = Dns.Server.create w.stacks.(0) ~allow_update:true () in
      Dns.Server.add_zone primary2 r.Dns.Durable.zone;
      Dns.Server.start primary2;
      Dns.Server.register_notify primary2 (Dns.Server.addr replica_server);
      update (mk_a "d.z" 4l);
      Sim.Engine.sleep 2_000.0;
      check_bool "replica converged on the restarted primary" true
        (Int32.equal (Dns.Secondary.serial secondary)
           (Dns.Zone.serial r.Dns.Durable.zone));
      check_int "no full transfer after the restart" 1
        (Dns.Secondary.full_transfers secondary);
      check_bool "the catch-up was incremental" true
        (Dns.Secondary.ixfr_applied secondary >= 1);
      Dns.Secondary.detach secondary;
      Dns.Server.stop primary2;
      Dns.Server.stop replica_server)

let durable_secondary_bootstraps_by_delta () =
  let w = make_world ~hosts:3 () in
  in_sim w (fun () ->
      let zone = Dns.Zone.simple ~origin:zname [ mk_a "h.z" 7l ] in
      let primary = Dns.Server.create w.stacks.(0) ~allow_update:true () in
      Dns.Server.add_zone primary zone;
      Dns.Server.start primary;
      let update rr =
        match
          Dns.Update.add_rr w.stacks.(2) ~server:(Dns.Server.addr primary)
            ~zone:zname rr
        with
        | Ok () -> ()
        | Error e -> Alcotest.failf "update failed: %a" Dns.Update.pp_error e
      in
      update (mk_a "a.z" 1l);
      update (mk_a "b.z" 2l);
      (* The replica synced here once and spilled its copy durably. *)
      let zone_r =
        Dns.Zone.create ~origin:zname ~soa:(Dns.Zone.soa zone)
          (Dns.Db.all (Dns.Zone.db zone))
      in
      let held = Dns.Zone.serial zone_r in
      let disk_r = Store.Disk.create ~name:"replica-disk" () in
      let _dr = Dns.Durable.attach disk_r zone_r in
      (* The primary moves on while the replica host is down. *)
      update (mk_a "c.z" 3l);
      update (mk_a "d.z" 4l);
      Store.Disk.crash disk_r;
      let r =
        match Dns.Durable.recover disk_r with
        | Some r -> r
        | None -> Alcotest.fail "replica recovery found no image"
      in
      check_bool "replica recovered its held serial" true
        (Int32.equal (Dns.Zone.serial r.Dns.Durable.zone) held);
      let replica_server = Dns.Server.create w.stacks.(1) () in
      Dns.Server.start replica_server;
      let secondary =
        Dns.Secondary.attach replica_server ~primary:(Dns.Server.addr primary)
          ~zone:zname ~recovered:r.Dns.Durable.zone ()
      in
      check_bool "bootstrap converged" true
        (Int32.equal (Dns.Secondary.serial secondary) (Dns.Zone.serial zone));
      check_int "no full transfer: snapshot + deltas only" 0
        (Dns.Secondary.full_transfers secondary);
      check_bool "the catch-up was incremental" true
        (Dns.Secondary.ixfr_applied secondary >= 1);
      Dns.Secondary.detach secondary;
      Dns.Server.stop primary;
      Dns.Server.stop replica_server)

(* --- the meta client under a regressed primary ---------------------- *)

let meta_value = Wire.Value.str "UW-BIND"

let serial_regression_triggers_resync () =
  let w = make_world ~hosts:3 () in
  let regressions0 = counter_value "hns.meta.serial_regressions" in
  let cached, fulls, held_after, primary2_serial =
    in_sim w (fun () ->
        let records =
          List.map
            (fun c ->
              Dns.Rr.make ~ttl:3600l
                (Hns.Meta_schema.context_key c)
                (Dns.Rr.Unspec
                   (Wire.Xdr.to_string Hns.Meta_schema.string_ty meta_value)))
            [ "alpha"; "beta"; "gamma" ]
        in
        let zone = Dns.Zone.simple ~origin:Hns.Meta_schema.zone_origin records in
        (* Age the zone well past a fresh image's serial. *)
        for _ = 1 to 5 do
          Dns.Zone.bump_serial zone
        done;
        let primary = Dns.Server.create w.stacks.(0) ~allow_update:true () in
        Dns.Server.add_zone primary zone;
        Dns.Server.start primary;
        let client =
          Hns.Meta_client.create w.stacks.(1)
            ~meta_server:(Dns.Server.addr primary)
            ~cache:(Hns.Cache.create ~mode:Hns.Cache.Demarshalled ())
            ()
        in
        (match Hns.Meta_client.preload client with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "preload failed: %s" (Hns.Errors.to_string e));
        let listener, stop_listener = Hns.Meta_client.start_notify_listener client in
        (* The primary restarts from a stale image: same records, a
           much older serial — the failure the durable spill prevents,
           seen from the client's side. *)
        Dns.Server.stop primary;
        let zone2 = Dns.Zone.simple ~origin:Hns.Meta_schema.zone_origin records in
        let primary2 = Dns.Server.create w.stacks.(0) ~allow_update:true () in
        Dns.Server.add_zone primary2 zone2;
        Dns.Server.start primary2;
        Dns.Server.register_notify primary2 listener;
        let admin =
          Hns.Meta_client.create w.stacks.(2)
            ~meta_server:(Dns.Server.addr primary2)
            ~cache:(Hns.Cache.create ~mode:Hns.Cache.Demarshalled ())
            ()
        in
        let key = Hns.Meta_schema.context_key "fresh" in
        (match
           Hns.Meta_client.store admin ~key ~ty:Hns.Meta_schema.string_ty
             meta_value
         with
        | Ok () -> ()
        | Error e -> Alcotest.failf "store failed: %s" (Hns.Errors.to_string e));
        Sim.Engine.sleep 2_000.0;
        let r =
          ( Hns.Cache.peek
              (Hns.Meta_client.cache client)
              ~key:(Hns.Meta_schema.cache_key key),
            Hns.Meta_client.full_refreshes client,
            Hns.Meta_client.zone_serial client,
            Dns.Zone.serial zone2 )
        in
        stop_listener ();
        Dns.Server.stop primary2;
        r)
  in
  check_bool "regression was detected" true
    (counter_value "hns.meta.serial_regressions" > regressions0);
  check_bool "client resynced the regressed zone" true cached;
  check_int "the resync was a full reload" 2 fulls;
  check_bool "client adopted the regressed serial" true
    (held_after = Some primary2_serial)

(* --- property: spill + crash + recover == the live zone ------------- *)

let gen_ops =
  QCheck.Gen.(
    list_size (int_range 1 24)
      (oneof
         [
           map2 (fun k v -> `Set (k mod 8, v)) small_int int;
           map (fun k -> `Del (k mod 8)) small_int;
         ]))

let arb_ops =
  QCheck.make ~print:(fun l -> Printf.sprintf "%d ops" (List.length l)) gen_ops

let render_records records =
  List.sort String.compare
    (List.map (fun rr -> Format.asprintf "%a" Dns.Rr.pp rr) records)

let recovery_matches_live ops =
  let w = make_world ~hosts:1 () in
  in_sim w (fun () ->
      let zone = Dns.Zone.simple ~origin:zname [ mk_a "h.z" 7l ] in
      let disk = Store.Disk.create ~cost:Store.Disk.free_cost () in
      (* A small checkpoint interval so the scripts cross snapshot
         boundaries: recovery composes snapshot + log tail, not just
         one or the other. *)
      let config = { Dns.Durable.default_config with snapshot_every = 7 } in
      let d = Dns.Durable.attach ~config disk zone in
      let server = Dns.Server.create w.stacks.(0) ~allow_update:true () in
      Dns.Server.add_zone server zone;
      List.iteri (fun i op -> apply_update server i op) ops;
      ignore (Dns.Durable.compact d);
      Store.Disk.crash disk;
      match Dns.Durable.recover ~config disk with
      | None -> false
      | Some r ->
          Int32.equal (Dns.Zone.serial r.Dns.Durable.zone) (Dns.Zone.serial zone)
          && render_records (Dns.Zone.axfr_records r.Dns.Durable.zone)
             = render_records (Dns.Zone.axfr_records zone))

let recovery_equivalence_prop =
  QCheck.Test.make ~name:"snapshot + WAL replay == the live zone" ~count:60
    arb_ops recovery_matches_live

(* --- metric hygiene ------------------------------------------------- *)

let store_metrics_lint_clean () =
  check_bool "store.disk.* registered" true
    (Obs.Metrics.find "store.disk.fsyncs" <> None);
  check_bool "store.wal.* registered" true
    (Obs.Metrics.find "store.wal.appends" <> None);
  check_bool "store.snapshot.* registered" true
    (Obs.Metrics.find "store.snapshot.saves" <> None);
  check_bool "dns.durable.* registered" true
    (Obs.Metrics.find "dns.durable.recoveries" <> None);
  check_bool "dns.journal.bytes registered" true
    (Obs.Metrics.find "dns.journal.bytes" <> None);
  check_bool "chaos.injector.torn_writes registered" true
    (Obs.Metrics.find "chaos.injector.torn_writes" <> None);
  (* Other suites deliberately register ill-formed names to exercise
     the linter; only this subsystem's names must be clean. *)
  let ours c =
    List.exists
      (fun p ->
        let quoted = "\"" ^ p in
        String.length c >= String.length quoted
        && String.sub c 0 (String.length quoted) = quoted)
      [ "store."; "dns.durable"; "dns.journal"; "chaos.injector" ]
  in
  match List.filter ours (Obs.Metrics.lint ()) with
  | [] -> ()
  | complaints ->
      Alcotest.failf "metric lint: %s" (String.concat "; " complaints)

let suite =
  [
    Alcotest.test_case "disk charges calibrated costs" `Quick
      disk_charges_calibrated_costs;
    Alcotest.test_case "disk crash drops unsynced bytes" `Quick
      disk_crash_drops_unsynced_bytes;
    Alcotest.test_case "torn writes are seeded and deterministic" `Quick
      torn_writes_are_seeded_and_deterministic;
    Alcotest.test_case "WAL replay round-trips" `Quick wal_replay_round_trips;
    Alcotest.test_case "WAL torn tail stops replay" `Quick
      wal_torn_tail_stops_replay;
    Alcotest.test_case "WAL group commit shares fsyncs" `Quick
      wal_group_commit_shares_fsyncs;
    Alcotest.test_case "WAL rotates segments" `Quick wal_rotates_segments;
    Alcotest.test_case "WAL compaction coalesces" `Quick wal_compaction_coalesces;
    Alcotest.test_case "WAL compaction races appends" `Quick
      wal_compaction_races_appends;
    Alcotest.test_case "snapshots prune and fall back" `Quick
      snapshots_prune_and_fall_back;
    Alcotest.test_case "journal sheds by bytes" `Quick journal_sheds_by_bytes;
    Alcotest.test_case "torn-write plan validates" `Quick torn_write_plan_validates;
    Alcotest.test_case "crash matrix: before/during/after the commit" `Quick
      crash_matrix;
    Alcotest.test_case "restarted primary resumes IXFR" `Quick
      restarted_primary_resumes_ixfr;
    Alcotest.test_case "durable secondary bootstraps by delta" `Quick
      durable_secondary_bootstraps_by_delta;
    Alcotest.test_case "serial regression triggers resync" `Quick
      serial_regression_triggers_resync;
    qtest recovery_equivalence_prop;
    Alcotest.test_case "store metrics lint clean" `Quick store_metrics_lint_clean;
  ]
