(* Cross-hop trace propagation, the query flight recorder, and the
   windowed SLO machinery.

   The acceptance test here is the one the tentpole promises: a
   chaos-free cold resolve through the shared agent must render as ONE
   connected span tree with remote parent links across at least three
   simulated processes (the client, the agent's request fiber, and the
   NSM server), verified by walking the [spans_json] export. Around it:
   a byte-identical determinism regression, the coalesced-follower
   trace link, SLO breach exemplars, the zero-cost disabled path, and
   the metric-name lint. *)

open Helpers
module S = Workload.Scenario
module J = Obs.Json

(* [contains s sub] — naive substring search; the strings are tiny. *)
let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let with_tracing f =
  Obs.Span.clear ();
  Obs.Qlog.clear ();
  Obs.Span.enable ();
  Obs.Qlog.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Span.disable ();
      Obs.Qlog.disable ())
    f

let fresh_agent scn =
  let hns = S.new_hns ~cache_mode:Hns.Cache.Demarshalled scn ~on:scn.S.agent_stack in
  let agent = Hns.Agent.create hns () in
  Hns.Agent.start agent;
  agent

(* One cold host-address resolve presented to the agent from a plain
   client process. Bundle and prefetch stay OFF so the resolve's
   trailing NSM data call really goes over the wire — that is the
   third process the trace must reach. *)
let cold_resolve_through_agent () =
  let scn = S.build () in
  S.in_sim scn (fun () ->
      let agent = fresh_agent scn in
      let ip =
        get_ok ~msg:"remote resolve"
          (Hns.Agent.remote_resolve_addr scn.S.client_stack
             ~agent:(Hns.Agent.binding agent)
             (Hns.Hns_name.make ~context:scn.S.bind_context
                ~name:
                  (Printf.sprintf "%s.%s"
                     (Transport.Netstack.host scn.S.client_stack)
                       .Sim.Topology.hostname scn.S.zone)))
      in
      check_bool "resolved to the client host's address" true
        (ip = Transport.Netstack.ip scn.S.client_stack);
      Hns.Agent.stop agent)

(* --- the acceptance test: one tree across >= 3 processes --- *)

type jspan = {
  j_id : int;
  j_trace : int;
  j_parent : int option;
  j_remote : bool;
  j_pid : int;
  j_name : string;
}

let parse_spans doc =
  J.to_list (J.get "spans" doc)
  |> List.map (fun s ->
         {
           j_id = J.to_int (J.get "id" s);
           j_trace = J.to_int (J.get "trace" s);
           j_parent =
             (match J.get "parent" s with
             | J.Null -> None
             | v -> Some (J.to_int v));
           j_remote = (match J.get "remote" s with
             | J.Bool b -> b
             | v -> J.to_float v <> 0.0);
           j_pid = J.to_int (J.get "pid" s);
           j_name = J.to_str (J.get "name" s);
         })

let one_tree_across_three_processes () =
  with_tracing (fun () ->
      cold_resolve_through_agent ();
      let doc = Obs.Export.spans_json () in
      check_string "spans document schema" "hns-spans/1"
        (J.to_str (J.get "schema" doc));
      let spans = parse_spans doc in
      (* The client's call is the only parentless hrpc_call: the root
         of the resolve's trace. *)
      let roots =
        List.filter (fun s -> s.j_name = "hrpc_call" && s.j_parent = None) spans
      in
      check_int "exactly one root client call" 1 (List.length roots);
      let root = List.hd roots in
      check_int "the root defines its trace id" root.j_id root.j_trace;
      let tree = List.filter (fun s -> s.j_trace = root.j_trace) spans in
      (* Connected: every non-root span's parent is in the same tree. *)
      let ids = List.map (fun s -> s.j_id) tree in
      List.iter
        (fun s ->
          if s.j_id <> root.j_id then
            match s.j_parent with
            | None -> Alcotest.failf "span %d (%s) is an orphan root" s.j_id s.j_name
            | Some p ->
                check_bool
                  (Printf.sprintf "span %d (%s) parent %d inside the tree" s.j_id
                     s.j_name p)
                  true (List.mem p ids))
        tree;
      (* The tree crosses at least three simulated processes. *)
      let pids = List.sort_uniq compare (List.map (fun s -> s.j_pid) tree) in
      check_bool
        (Printf.sprintf "tree spans >= 3 processes (got %d)" (List.length pids))
        true
        (List.length pids >= 3);
      (* The agent adopted the client's context over the wire... *)
      let serves = List.filter (fun s -> s.j_name = "hrpc_serve") tree in
      check_bool "agent-side serve remote-parented to the client's call" true
        (List.exists
           (fun s ->
             s.j_remote && s.j_parent = Some root.j_id && s.j_pid <> root.j_pid)
           serves);
      (* ... and so did the NSM server, one more hop down. *)
      check_bool "a second remote hop (the NSM server)" true
        (List.length (List.filter (fun s -> s.j_remote) serves) >= 2);
      let expect name =
        check_bool (Printf.sprintf "tree contains a %s span" name) true
          (List.exists (fun s -> s.j_name = name) tree)
      in
      List.iter expect [ "resolve"; "find_nsm"; "nsm_call" ];
      (* The flight recorder saw the same trace: the agent's record and
         the nested resolve record both carry it, with hops, wire bytes
         and servers annotated by the layers underneath. *)
      let records = Obs.Qlog.records () in
      check_bool "flight records written" true (records <> []);
      let in_trace =
        List.filter (fun r -> r.Obs.Qlog.trace = root.j_trace) records
      in
      check_bool "agent record joined the propagated trace" true
        (List.exists
           (fun r -> contains r.Obs.Qlog.name "agent-resolve:")
           in_trace);
      check_bool "a record in the trace has per-hop timings" true
        (List.exists (fun r -> Obs.Qlog.hops r <> []) in_trace);
      check_bool "a record in the trace counted wire bytes" true
        (List.exists (fun r -> r.Obs.Qlog.bytes > 0) in_trace);
      check_bool "a record in the trace names a server" true
        (List.exists (fun r -> Obs.Qlog.servers r <> []) in_trace);
      check_string "qlog document schema" "hns-qlog/1"
        (J.to_str (J.get "schema" (Obs.Export.qlog_json ()))))

(* --- determinism: same seed, byte-identical exports --- *)

let trace_run () =
  Obs.Span.clear ();
  Obs.Qlog.clear ();
  cold_resolve_through_agent ();
  (J.to_string (Obs.Export.spans_json ()), Obs.Qlog.json_lines ())

let exports_deterministic () =
  with_tracing (fun () ->
      let s1, q1 = trace_run () in
      let s2, q2 = trace_run () in
      check_bool "spans export nonempty" true (String.length s1 > 2);
      check_bool "qlog export nonempty" true (String.length q1 > 2);
      check_string "span trees render byte-identically" s1 s2;
      check_string "flight records render byte-identically" q1 q2)

(* --- coalesced followers link the leader's trace --- *)

let followers_link_leader_trace () =
  with_tracing (fun () ->
      let scn = S.build () in
      S.in_sim scn (fun () ->
          let agent = fresh_agent scn in
          let mb = Sim.Engine.Mailbox.create () in
          let waiters = 3 in
          for i = 1 to waiters do
            Sim.Engine.spawn_child ~name:(Printf.sprintf "proc%d" i) (fun () ->
                Sim.Engine.Mailbox.send mb
                  (Hns.Agent.remote_find_nsm scn.S.client_stack
                     ~agent:(Hns.Agent.binding agent) ~context:scn.S.bind_context
                     ~query_class:Hns.Query_class.hrpc_binding))
          done;
          List.init waiters (fun _ -> Sim.Engine.Mailbox.recv mb)
          |> List.iter (fun r -> ignore (get_ok ~msg:"burst find_nsm" r));
          check_int "two followers coalesced" 2 (Hns.Agent.coalesced agent);
          Hns.Agent.stop agent);
      let records = Obs.Qlog.records () in
      let followers = Obs.Qlog.by_outcome Obs.Qlog.Coalesced records in
      check_int "two coalesced flight records" 2 (List.length followers);
      List.iter
        (fun f ->
          check_bool "follower links a leader trace" true
            (f.Obs.Qlog.linked_trace <> 0);
          check_bool "follower kept its own distinct trace" true
            (f.Obs.Qlog.trace <> f.Obs.Qlog.linked_trace);
          check_bool "the linked trace is the leader's record's trace" true
            (List.exists
               (fun r ->
                 r.Obs.Qlog.trace = f.Obs.Qlog.linked_trace
                 && r.Obs.Qlog.outcome <> Obs.Qlog.Coalesced)
               records))
        followers)

(* --- SLO breaches retain exemplars resolvable from qlog --- *)

let resolve_service hns scn =
  Hns.Client.resolve hns ~query_class:Hns.Query_class.hrpc_binding
    ~payload_ty:Hns.Nsm_intf.binding_payload_ty ~service:scn.S.service_name
    (Hns.Hns_name.make ~context:scn.S.bind_context ~name:scn.S.service_host)

let breach_retains_exemplar () =
  Obs.Slo.clear ();
  Fun.protect ~finally:Obs.Slo.clear (fun () ->
      with_tracing (fun () ->
          (* Pre-register the resolve SLO with an unmeetable target:
             the cold resolve must breach and leave an exemplar. *)
          ignore (Obs.Slo.get_or_create ~target_ms:0.01 "resolve");
          let scn = S.build () in
          let hns = S.new_hns scn ~on:scn.S.client_stack in
          S.in_sim scn (fun () ->
              match resolve_service hns scn with
              | Ok (Some _) -> ()
              | Ok None -> Alcotest.fail "resolve returned not-found"
              | Error e -> Alcotest.failf "resolve: %s" (Hns.Errors.to_string e));
          let slo =
            match Obs.Slo.find "resolve" with
            | Some s -> s
            | None -> Alcotest.fail "resolve SLO vanished"
          in
          check_bool "the resolve breached" true (Obs.Slo.breaches slo >= 1);
          let traces = Obs.Slo.exemplar_traces () in
          check_bool "an exemplar trace was retained" true (traces <> []);
          (* The slowest flight record cross-references a retained
             exemplar, and the exemplar reconstitutes both the span
             tree and the flight records of that trace. *)
          (match Obs.Qlog.slowest 1 (Obs.Qlog.records ()) with
          | [ slow ] ->
              check_bool "slowest record's trace resolves to an exemplar" true
                (List.mem slow.Obs.Qlog.trace traces)
          | _ -> Alcotest.fail "expected one flight record");
          let doc = Obs.Slo.exemplar_json (List.hd traces) in
          check_bool "exemplar carries the span tree" true
            (J.to_list (J.get "spans" doc) <> []);
          check_bool "exemplar carries the flight records" true
            (J.to_list (J.get "records" doc) <> [])))

(* --- windowed time series over virtual time --- *)

let timeseries_window () =
  let w = make_world ~hosts:1 () in
  in_sim w (fun () ->
      let ts = Obs.Timeseries.create ~window_ms:1_000.0 () in
      Obs.Timeseries.observe ts 10.0;
      Sim.Engine.sleep 600.0;
      Obs.Timeseries.observe ts 20.0;
      Sim.Engine.sleep 600.0;
      (* The first sample is now 1.2 virtual seconds old: expired. *)
      Obs.Timeseries.observe ts 30.0;
      let s = Obs.Timeseries.summary ts in
      check_int "expired sample pruned from the window" 2 s.Obs.Timeseries.n;
      check_float_near "p50 interpolates the survivors" 25.0 s.Obs.Timeseries.p50;
      check_float_near "max over the window" 30.0 s.Obs.Timeseries.max;
      check_float_near "rate normalises to the window span" 2.0
        s.Obs.Timeseries.rate_per_s)

let slo_accounting () =
  Obs.Slo.clear ();
  Fun.protect ~finally:Obs.Slo.clear (fun () ->
      let slo = Obs.Slo.get_or_create ~target_ms:10.0 ~objective:0.9 "unit" in
      for _ = 1 to 9 do
        Obs.Slo.observe slo 5.0
      done;
      Obs.Slo.observe slo 50.0;
      check_int "total observations" 10 (Obs.Slo.total slo);
      check_int "one breach" 1 (Obs.Slo.breaches slo);
      check_float_near "compliance" 0.9 (Obs.Slo.compliance slo);
      check_bool "compliant exactly at the objective" true (Obs.Slo.compliant slo);
      check_float_near "budget spent exactly" 0.0 (Obs.Slo.budget_remaining slo);
      check_float_near "burning exactly at budget" 1.0 (Obs.Slo.burn_rate slo);
      (* An error spends budget like a slow answer does. *)
      Obs.Slo.observe slo ~ok:false 1.0;
      check_int "errors breach too" 2 (Obs.Slo.breaches slo);
      check_bool "budget now blown" true (Obs.Slo.budget_remaining slo < 0.0);
      check_bool "no longer compliant" true (not (Obs.Slo.compliant slo));
      (* Parameters are fixed at creation. *)
      let again = Obs.Slo.get_or_create ~target_ms:99.0 "unit" in
      check_float_near "later parameters ignored" 10.0 (Obs.Slo.target_ms again);
      (* Publishing mirrors the SLO into the metrics registry. *)
      Obs.Slo.publish ();
      check_float_near "published target gauge" 10.0
        (Obs.Metrics.get (Obs.Metrics.gauge "slo.unit.target_ms"));
      check_float_near "published total gauge" 11.0
        (Obs.Metrics.get (Obs.Metrics.gauge "slo.unit.total")))

(* --- the disabled path performs no work --- *)

let disabled_tracing_is_inert () =
  Obs.Span.clear ();
  Obs.Qlog.clear ();
  Obs.Span.disable ();
  Obs.Qlog.disable ();
  let attr_evals = ref 0 in
  let v =
    Obs.Span.with_span
      ~attrs:(fun () ->
        incr attr_evals;
        [ ("k", "v") ])
      "off"
      (fun () -> 17)
  in
  check_int "with_span is transparent when disabled" 17 v;
  Obs.Span.add_attr "k" "v";
  Obs.Qlog.with_query ~name:"off" ~query_class:"x" (fun () ->
      Obs.Qlog.note_outcome Obs.Qlog.Stale;
      Obs.Qlog.note_hop "h" 1.0;
      Obs.Qlog.note_trace 7);
  check_int "attrs thunk never invoked" 0 !attr_evals;
  check_int "no span recorded" 0 (List.length (Obs.Span.finished ()));
  check_int "no span left open" 0 (List.length (Obs.Span.open_stack ()));
  check_int "no flight record written" 0 (List.length (Obs.Qlog.records ()))

(* --- flight-recorder filters and outcome ranking --- *)

let qlog_filters () =
  with_tracing (fun () ->
      Obs.Qlog.with_query ~name:"ctx-a!one" ~query_class:"x" (fun () ->
          Obs.Qlog.note_outcome Obs.Qlog.Stale;
          (* Only upgrades stick: Stale does not downgrade to Miss. *)
          Obs.Qlog.note_outcome Obs.Qlog.Miss);
      Obs.Qlog.with_query ~name:"ctx-b!two" ~query_class:"x" (fun () ->
          Obs.Qlog.note_outcome Obs.Qlog.Hit);
      let records = Obs.Qlog.records () in
      check_int "two records retired" 2 (List.length records);
      (match Obs.Qlog.by_outcome Obs.Qlog.Stale records with
      | [ r ] -> check_string "stale record found" "ctx-a!one" r.Obs.Qlog.name
      | rs -> Alcotest.failf "expected one stale record, got %d" (List.length rs));
      (match Obs.Qlog.by_context "ctx-b" records with
      | [ r ] -> check_string "context filter" "ctx-b!two" r.Obs.Qlog.name
      | rs -> Alcotest.failf "expected one ctx-b record, got %d" (List.length rs));
      check_int "slowest truncates" 1
        (List.length (Obs.Qlog.slowest 1 records)))

(* --- the metric-name lint --- *)

let metric_name_lint () =
  check_bool "every registered metric is layer.component.metric" true
    (Obs.Metrics.lint () = []);
  ignore (Obs.Metrics.counter "badly.named");
  let after = Obs.Metrics.lint () in
  check_int "the two-segment name is flagged" 1 (List.length after);
  check_bool "the complaint names the offender" true
    (contains (List.hd after) "badly.named")

let suite =
  [
    Alcotest.test_case "cold resolve: one tree across three processes" `Quick
      one_tree_across_three_processes;
    Alcotest.test_case "same seed, byte-identical span and qlog exports" `Quick
      exports_deterministic;
    Alcotest.test_case "coalesced followers link the leader's trace" `Quick
      followers_link_leader_trace;
    Alcotest.test_case "SLO breach retains a resolvable exemplar" `Quick
      breach_retains_exemplar;
    Alcotest.test_case "time series prune on the virtual clock" `Quick
      timeseries_window;
    Alcotest.test_case "SLO accounting: budget, burn rate, publish" `Quick
      slo_accounting;
    Alcotest.test_case "disabled tracing does no work" `Quick
      disabled_tracing_is_inert;
    Alcotest.test_case "flight-recorder filters" `Quick qlog_filters;
    Alcotest.test_case "metric names lint clean" `Quick metric_name_lint;
  ]
