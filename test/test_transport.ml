(* Tests for addresses, UDP, and TCP over the simulated network. *)

open Helpers

let address_basics () =
  let a = Transport.Address.make 0x0A000001l 53 in
  check_string "dotted quad" "10.0.0.1:53" (Transport.Address.to_string a);
  check_bool "equal" true (Transport.Address.equal a (Transport.Address.make 0x0A000001l 53));
  check_bool "port differs" false
    (Transport.Address.equal a (Transport.Address.make 0x0A000001l 54));
  check_int "compare" 0 (Transport.Address.compare a a)

let udp_delivery () =
  let w = make_world ~hosts:2 () in
  let got =
    in_sim w (fun () ->
        let server = Transport.Udp.bind w.stacks.(0) ~port:9000 in
        let client = Transport.Udp.bind_any w.stacks.(1) in
        Sim.Engine.spawn_child (fun () ->
            let src, payload = Transport.Udp.recv server in
            Transport.Udp.sendto server ~dst:src ("re:" ^ payload));
        Transport.Udp.sendto client ~dst:(Transport.Udp.local_addr server) "ping";
        let _, reply = Transport.Udp.recv client in
        reply)
  in
  check_string "echo" "re:ping" got

let udp_delivery_takes_time () =
  let w = make_world ~hosts:2 () in
  let elapsed =
    in_sim w (fun () ->
        let server = Transport.Udp.bind w.stacks.(0) ~port:9001 in
        let client = Transport.Udp.bind_any w.stacks.(1) in
        let t0 = Sim.Engine.time () in
        Transport.Udp.sendto client ~dst:(Transport.Udp.local_addr server) "x";
        ignore (Transport.Udp.recv server);
        Sim.Engine.time () -. t0)
  in
  check_bool "positive transit time" true (elapsed > 0.0)

let udp_unbound_port_drops () =
  let w = make_world ~hosts:2 () in
  let got =
    in_sim w (fun () ->
        let client = Transport.Udp.bind_any w.stacks.(1) in
        Transport.Udp.sendto client
          ~dst:(Transport.Address.make (Transport.Netstack.ip w.stacks.(0)) 12345)
          "void";
        Transport.Udp.recv_timeout client 50.0)
  in
  check_bool "no reply" true (got = None)

let udp_port_conflict () =
  let w = make_world ~hosts:1 () in
  let _a = Transport.Udp.bind w.stacks.(0) ~port:7 in
  (match Transport.Udp.bind w.stacks.(0) ~port:7 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "double bind should raise");
  Transport.Udp.close _a;
  (* closing releases the port *)
  let b = Transport.Udp.bind w.stacks.(0) ~port:7 in
  Transport.Udp.close b

let udp_loss () =
  let w = make_world ~hosts:2 ~drop_probability:0.5 () in
  let received =
    in_sim w (fun () ->
        let server = Transport.Udp.bind w.stacks.(0) ~port:9002 in
        let client = Transport.Udp.bind_any w.stacks.(1) in
        for _ = 1 to 100 do
          Transport.Udp.sendto client ~dst:(Transport.Udp.local_addr server) "m"
        done;
        Sim.Engine.sleep 100.0;
        Transport.Udp.pending server)
  in
  check_bool "some datagrams lost" true (received < 100);
  check_bool "some datagrams survived" true (received > 0);
  check_bool "drop counter matches" true
    (Transport.Netstack.packets_dropped w.net = 100 - received)

let tcp_connect_and_exchange () =
  let w = make_world ~hosts:2 () in
  let got =
    in_sim w (fun () ->
        let listener = Transport.Tcp.listen w.stacks.(0) ~port:5000 in
        Sim.Engine.spawn_child (fun () ->
            let conn = Transport.Tcp.accept listener in
            let m1 = Transport.Tcp.recv conn in
            let m2 = Transport.Tcp.recv conn in
            Transport.Tcp.send conn (m1 ^ "+" ^ m2);
            Transport.Tcp.close conn);
        let conn =
          Transport.Tcp.connect w.stacks.(1) (Transport.Tcp.listener_addr listener)
        in
        Transport.Tcp.send conn "a";
        Transport.Tcp.send conn "b";
        let reply = Transport.Tcp.recv conn in
        Transport.Tcp.close conn;
        reply)
  in
  check_string "exchange" "a+b" got

let tcp_ordering_large_then_small () =
  (* A large message must not be overtaken by a later small one. *)
  let w = make_world ~hosts:2 () in
  let got =
    in_sim w (fun () ->
        let listener = Transport.Tcp.listen w.stacks.(0) ~port:5001 in
        Sim.Engine.spawn_child (fun () ->
            let conn = Transport.Tcp.accept listener in
            Transport.Tcp.send conn (String.make 100_000 'L');
            Transport.Tcp.send conn "S";
            Transport.Tcp.close conn);
        let conn =
          Transport.Tcp.connect w.stacks.(1) (Transport.Tcp.listener_addr listener)
        in
        let first = Transport.Tcp.recv conn in
        let second = Transport.Tcp.recv conn in
        Transport.Tcp.close conn;
        (String.length first, second))
  in
  check_bool "large first" true (got = (100_000, "S"))

let tcp_refused () =
  let w = make_world ~hosts:2 () in
  in_sim w (fun () ->
      match
        Transport.Tcp.connect w.stacks.(1)
          (Transport.Address.make (Transport.Netstack.ip w.stacks.(0)) 4444)
      with
      | exception Transport.Tcp.Connection_refused _ -> ()
      | _ -> Alcotest.fail "connect to closed port should be refused")

let tcp_close_propagates () =
  let w = make_world ~hosts:2 () in
  in_sim w (fun () ->
      let listener = Transport.Tcp.listen w.stacks.(0) ~port:5002 in
      Sim.Engine.spawn_child (fun () ->
          let conn = Transport.Tcp.accept listener in
          Transport.Tcp.close conn);
      let conn =
        Transport.Tcp.connect w.stacks.(1) (Transport.Tcp.listener_addr listener)
      in
      match Transport.Tcp.recv conn with
      | exception Transport.Tcp.Connection_closed -> ()
      | _ -> Alcotest.fail "recv after peer close should raise")

let tcp_handshake_costs_rtt () =
  let w = make_world ~hosts:2 () in
  let elapsed =
    in_sim w (fun () ->
        let listener = Transport.Tcp.listen w.stacks.(0) ~port:5003 in
        Sim.Engine.spawn_child (fun () -> ignore (Transport.Tcp.accept listener));
        let t0 = Sim.Engine.time () in
        let conn =
          Transport.Tcp.connect w.stacks.(1) (Transport.Tcp.listener_addr listener)
        in
        Transport.Tcp.close conn;
        Sim.Engine.time () -. t0)
  in
  (* default topology: 0.5 ms per hop, handshake is two hops *)
  check_bool "about one RTT" true (elapsed >= 1.0 && elapsed < 2.0)

let netstack_counters () =
  let w = make_world ~hosts:2 () in
  let before = Transport.Netstack.packets_sent w.net in
  in_sim w (fun () ->
      let server = Transport.Udp.bind w.stacks.(0) ~port:9100 in
      let client = Transport.Udp.bind_any w.stacks.(1) in
      Transport.Udp.sendto client ~dst:(Transport.Udp.local_addr server) "abc";
      ignore (Transport.Udp.recv server));
  check_int "one packet" 1 (Transport.Netstack.packets_sent w.net - before);
  check_bool "bytes counted" true (Transport.Netstack.bytes_sent w.net >= 3)

let netstack_delivery_crosscheck () =
  (* At quiescence every sent packet was either delivered or dropped:
     packets_sent = packets_received + packets_dropped. *)
  let w = make_world ~hosts:2 ~drop_probability:0.3 () in
  in_sim w (fun () ->
      let server = Transport.Udp.bind w.stacks.(0) ~port:9101 in
      let client = Transport.Udp.bind_any w.stacks.(1) in
      for _ = 1 to 200 do
        Transport.Udp.sendto client ~dst:(Transport.Udp.local_addr server) "m"
      done;
      Sim.Engine.sleep 100.0);
  let sent = Transport.Netstack.packets_sent w.net in
  let received = Transport.Netstack.packets_received w.net in
  let dropped = Transport.Netstack.packets_dropped w.net in
  check_int "all packets sent" 200 sent;
  check_bool "some dropped" true (dropped > 0);
  check_bool "some delivered" true (received > 0);
  check_int "sent = received + dropped" sent (received + dropped)

let suite =
  [
    Alcotest.test_case "address basics" `Quick address_basics;
    Alcotest.test_case "udp delivery" `Quick udp_delivery;
    Alcotest.test_case "udp transit time" `Quick udp_delivery_takes_time;
    Alcotest.test_case "udp unbound drops" `Quick udp_unbound_port_drops;
    Alcotest.test_case "udp port conflict" `Quick udp_port_conflict;
    Alcotest.test_case "udp loss model" `Quick udp_loss;
    Alcotest.test_case "tcp exchange" `Quick tcp_connect_and_exchange;
    Alcotest.test_case "tcp ordering" `Quick tcp_ordering_large_then_small;
    Alcotest.test_case "tcp refused" `Quick tcp_refused;
    Alcotest.test_case "tcp close propagates" `Quick tcp_close_propagates;
    Alcotest.test_case "tcp handshake RTT" `Quick tcp_handshake_costs_rtt;
    Alcotest.test_case "netstack counters" `Quick netstack_counters;
    Alcotest.test_case "netstack delivery cross-check" `Quick
      netstack_delivery_crosscheck;
  ]
